package policy

import (
	"fmt"

	"mpcdvfs/internal/core"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/obs"
	"mpcdvfs/internal/pattern"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/telemetry"
)

// MPC is the paper's power-management scheme (Fig. 6): a model-predictive
// controller that, between kernels, optimizes a receding window of
// expected future kernels and applies the decision for the current one.
//
// Lifecycle per application (§V-B, Fig. 11): the first invocation runs
// PPK while the pattern extractor records kernel signatures, counters and
// the PPK optimization overhead T_PPK; from the second invocation onward
// the search order, adaptive horizon generator and stored kernel records
// drive true MPC decisions. One MPC instance serves one application.
type MPC struct {
	opt   *core.Optimizer
	calib *predict.Calibrated
	space hw.Space
	// cache, when non-nil, is the bounded LRU memoizing the raw
	// predictor underneath the calibration layer (WithPredictionCache).
	cache *predict.Cache
	// cacheCap is the requested cache capacity; consumed by NewMPC
	// after options are applied (0 = no cache).
	cacheCap int
	// sweepSubmit, when non-nil, routes exhaustive sweeps through a
	// cross-session batch coordinator (WithSweepSubmitter); consumed by
	// NewMPC after options are applied.
	sweepSubmit predict.SweepSubmit

	// Alpha is the total performance-loss bound for the adaptive horizon
	// (default core.DefaultAlpha = 5%).
	alpha float64
	// fullHorizon disables horizon adaptation (the §VI-E ablation).
	fullHorizon bool
	// naiveOrder disables the search-order heuristic (ordering ablation).
	naiveOrder bool

	ext *pattern.Extractor

	// obsv receives the policy's own events (horizon changes, model
	// errors); the engine threads its observer in via SetObserver. Never
	// nil — obs.Nop when observability is disabled.
	obsv obs.Observer

	// tc is the decision-path trace context threaded in via
	// SetTraceContext (nil when tracing is off); it also rides on the
	// optimizer so batched sweeps and scalar predictor calls land in
	// the same trace.
	tc *telemetry.Context

	// Cross-run state.
	appName       string
	profile       core.Profile
	rank          []int
	horizon       *core.HorizonGen
	ppkOverheadMS float64

	// suffixDeficit[j] is the total execution time (ms) by which kernels
	// j..N-1 are expected to exceed their individual throughput
	// allowances even at the fail-safe configuration. The tracker
	// reserves this headroom so that kernels outside a shortened horizon
	// still get the banked time they need — the §IV-A1b behaviour of
	// adjusting headroom using the "performance behavior of future
	// kernels" from the pattern extractor. Recomputed each run; nil while
	// profiling.
	suffixDeficit []float64

	// Per-run state.
	tracker   *core.Tracker
	profiling bool
	n         int
	elapsedMS float64
	last      sim.Observation
	haveObs   bool
	// lastHorizon is the previous decision's horizon length, for
	// OnHorizonChange edge detection (-1 before the first MPC decision
	// of a run).
	lastHorizon int

	// Horizon statistics for Fig. 15.
	horizonSum float64
	horizonCnt int
}

// MPCOption configures an MPC policy.
type MPCOption func(*MPC)

// WithAlpha overrides the performance-loss bound α.
func WithAlpha(a float64) MPCOption { return func(m *MPC) { m.alpha = a } }

// WithFullHorizon disables the adaptive horizon: every decision optimizes
// over all remaining kernels regardless of overhead (§VI-E ablation).
func WithFullHorizon() MPCOption { return func(m *MPC) { m.fullHorizon = true } }

// WithExhaustiveSearch replaces greedy hill climbing with a full sweep
// per window kernel — the search-cost ablation.
func WithExhaustiveSearch() MPCOption {
	return func(m *MPC) { m.opt.UseExhaustive = true }
}

// WithExecutionOrder replaces the above/below-target search-order
// heuristic with plain execution order — the ordering ablation.
func WithExecutionOrder() MPCOption { return func(m *MPC) { m.naiveOrder = true } }

// WithWorkers shards the policy's exhaustive configuration sweeps
// across n goroutines (<= 0 uses the process default, 1 is serial).
// Decisions are byte-identical for every value; see core.Optimizer.
func WithWorkers(n int) MPCOption { return func(m *MPC) { m.opt.Workers = n } }

// WithPredictionCache memoizes the raw predictor behind a bounded LRU
// of the given capacity (<= 0 uses predict.DefaultCacheSize), so
// repeated horizon evaluations of the same (kernel, configuration)
// point stop re-walking the forest. The cache sits underneath the
// runtime-feedback calibration layer, which keeps cached entries valid:
// decisions are byte-identical with the cache on or off.
func WithPredictionCache(capacity int) MPCOption {
	return func(m *MPC) {
		m.cacheCap = capacity
		if m.cacheCap <= 0 {
			m.cacheCap = predict.DefaultCacheSize
		}
	}
}

// WithSweepSubmitter routes the policy's exhaustive configuration
// sweeps through a cross-session batch coordinator (internal/batch):
// instead of evaluating the space in-process, each sweep is submitted
// and the session parks until the coordinator's epoch fuses it into one
// mega-batch forest evaluation. Decisions are byte-identical with the
// submitter installed or not — the fused path obeys the SpaceEvaluator
// bit-exactness contract and every failure falls back to the direct
// path. Requires a *predict.RandomForest model; combined with
// WithPredictionCache the submitter is ignored (a fused sweep would
// bypass the per-configuration cache the option asks for).
func WithSweepSubmitter(submit predict.SweepSubmit) MPCOption {
	return func(m *MPC) { m.sweepSubmit = submit }
}

// NewMPC returns an MPC policy using the given predictor and
// configuration space. Optimization overhead is measured, not assumed:
// the engine reports the wall time it charged for each decision (after
// any CPU-phase hiding) and the adaptive horizon feeds on those
// measurements.
func NewMPC(model predict.Model, space hw.Space, opts ...MPCOption) *MPC {
	c := predict.NewCalibrated(model)
	m := &MPC{
		opt:   core.NewOptimizer(c, space),
		calib: c,
		space: space,
		alpha: core.DefaultAlpha,
		ext:   pattern.New(),
		obsv:  obs.Nop{},
	}
	for _, o := range opts {
		o(m)
	}
	if m.cacheCap > 0 {
		// Rebuild the predictor stack with the cache at the bottom:
		// raw model -> LRU cache -> calibration -> optimizer. Options
		// already applied to the optimizer (workers, exhaustive mode)
		// are preserved.
		m.cache = predict.NewCache(model, m.cacheCap)
		m.calib = predict.NewCalibrated(m.cache)
		old := m.opt
		m.opt = core.NewOptimizer(m.calib, space)
		m.opt.UseExhaustive = old.UseExhaustive
		m.opt.Workers = old.Workers
	}
	if m.sweepSubmit != nil && m.cacheCap <= 0 {
		if rfm, ok := model.(*predict.RandomForest); ok {
			m.opt.Sweep = predict.NewRemoteSweep(m.calib, rfm, m.sweepSubmit)
		}
	}
	return m
}

// PredictionCache returns the policy's prediction cache, or nil when
// WithPredictionCache was not used. Exposed so callers can instrument
// it into a metrics registry or inspect hit rates.
func (m *MPC) PredictionCache() *predict.Cache { return m.cache }

// SetObserver implements obs.Instrumentable: the engine threads its
// observer in before every run so MPC can report horizon changes and
// prediction errors.
func (m *MPC) SetObserver(o obs.Observer) {
	if o == nil {
		o = obs.Nop{}
	}
	m.obsv = o
}

// SetTraceContext implements telemetry.Traceable: the serving session
// (or the engine) threads its trace context in so decisions decompose
// into search/featurize/forest-eval spans. Tracing never perturbs
// decisions.
func (m *MPC) SetTraceContext(tc *telemetry.Context) {
	m.tc = tc
	m.opt.Trace = tc
}

// Name implements sim.Policy.
func (m *MPC) Name() string {
	if m.fullHorizon {
		return "mpc-full-horizon"
	}
	return "mpc"
}

// Begin implements sim.Policy.
func (m *MPC) Begin(info sim.RunInfo) {
	if m.appName == "" {
		m.appName = info.AppName
	} else if m.appName != info.AppName {
		panic(fmt.Sprintf("policy: MPC instance for %s reused on %s", m.appName, info.AppName))
	}
	m.ext.BeginRun()
	m.tracker = core.NewTracker(info.Target.Throughput())
	m.n = info.NumKernels
	m.elapsedMS = 0
	m.haveObs = false
	m.lastHorizon = -1

	m.profiling = info.FirstRun || len(m.profile.Insts) != m.n
	m.suffixDeficit = nil
	if !m.profiling && m.rank == nil {
		if m.naiveOrder {
			m.rank = make([]int, m.n)
			for i := range m.rank {
				m.rank[i] = i
			}
		} else {
			order, err := core.BuildSearchOrder(m.profile, info.Target.Throughput())
			if err != nil {
				// Profiling produced unusable data; stay in profiling mode.
				m.profiling = true
				return
			}
			m.rank = core.RankOf(order)
		}
		m.horizon = core.NewHorizonGen(m.alpha, m.n, info.Target.TotalTimeMS, m.ppkOverheadMS)
	}
}

// Profiling reports whether the policy is in its PPK profiling run.
func (m *MPC) Profiling() bool { return m.profiling }

// Decide implements sim.Policy.
func (m *MPC) Decide(i int) sim.Decision {
	if m.profiling {
		d := m.decidePPK()
		// The profiling run is the §V-B PPK fallback while the pattern
		// extractor learns; record it as such (the cold-start reason of
		// the very first kernel takes precedence).
		if d.Fallback == "" {
			d.Fallback = obs.FallbackProfiling
		}
		return d
	}
	return m.decideMPC(i)
}

// decidePPK is the profiling-run behaviour: plain PPK while the extractor
// learns the pattern (§V-B).
func (m *MPC) decidePPK() sim.Decision {
	if !m.haveObs {
		return sim.Decision{Config: m.opt.FailSafe(), Evals: 0, Fallback: obs.FallbackColdStart}
	}
	head := m.tracker.HeadroomMS(m.last.Insts)
	sp := m.tc.Start(telemetry.SpanSearch)
	res := m.opt.ExhaustiveSearch(m.last.Counters, head)
	sp.End()
	return sim.Decision{
		Config: res.Config, Evals: res.Evals, SearchIters: 1,
		PredTimeMS: res.Est.TimeMS, PredGPUPowerW: res.Est.GPUPowerW,
	}
}

// decideMPC is the steady-state behaviour: adaptive horizon, windowed
// optimization in search order, receding application.
func (m *MPC) decideMPC(i int) sim.Decision {
	extraEvals := 0
	if m.suffixDeficit == nil {
		extraEvals = m.computeDeficits()
	}

	h := m.n
	if !m.fullHorizon {
		h = m.horizon.Horizon(i+1, m.elapsedMS)
	}
	m.horizonSum += float64(h)
	m.horizonCnt++
	if h != m.lastHorizon && obs.Enabled(m.obsv) {
		m.obsv.OnHorizonChange(obs.HorizonEvent{
			Policy: m.Name(), App: m.appName, Index: i,
			Horizon: h, Prev: m.lastHorizon, Full: m.n,
		})
	}
	m.lastHorizon = h
	if h <= 0 {
		// Cannot afford any optimization: guard with the fail-safe.
		return sim.Decision{Config: m.opt.FailSafe(), Evals: extraEvals, Fallback: obs.FallbackZeroHorizon}
	}

	var win []core.WindowKernel
	end := i + h
	if end > m.n {
		end = m.n
	}
	for j := i; j < end; j++ {
		rec, ok := m.ext.Expect(j)
		if !ok {
			end = j
			break
		}
		win = append(win, core.WindowKernel{
			ExecIndex: j,
			Rec:       rec,
			ExpInsts:  pattern.ExpectedInsts(rec),
			Rank:      m.rank[j],
		})
	}
	if len(win) == 0 {
		// Pattern knowledge ran out (e.g. the app diverged from its
		// recorded sequence): fall back to history-based behaviour.
		d := m.decidePPK()
		d.Evals += extraEvals
		d.Horizon = h
		d.Fallback = obs.FallbackPatternDivergence
		return d
	}

	// Reserve the future deficit beyond the window: kernels the horizon
	// cannot see must still find their banked time when they arrive.
	tr := m.tracker
	if res := m.reservedBeyond(end); res > 0 {
		tr = tr.Clone()
		tr.Add(0, res)
	}
	sp := m.tc.Start(telemetry.SpanSearch)
	cfg, est, evals := m.opt.OptimizeWindow(win, tr)
	sp.End()
	return sim.Decision{
		Config: cfg, Evals: evals + extraEvals, SearchIters: len(win), Horizon: h,
		PredTimeMS: est.TimeMS, PredGPUPowerW: est.GPUPowerW,
	}
}

// computeDeficits fills suffixDeficit from the pattern extractor's
// expected kernels: deficit_j = max(0, E[T_j at fail-safe] − E[I_j]/target).
// One predictor evaluation per kernel, charged to the decision that
// triggered it.
func (m *MPC) computeDeficits() (evals int) {
	def := make([]float64, m.n+1)
	tp := m.tracker.TargetThroughput()
	for j := 0; j < m.n; j++ {
		rec, ok := m.ext.Expect(j)
		if !ok {
			continue
		}
		est := m.opt.Model.PredictKernel(rec.Counters, m.opt.FailSafe())
		evals++
		if tp > 0 {
			allowance := pattern.ExpectedInsts(rec) / tp
			if d := est.TimeMS - allowance; d > 0 {
				def[j] = d
			}
		}
	}
	// Suffix sums: suffixDeficit[j] = Σ_{k ≥ j} def[k].
	for j := m.n - 1; j >= 0; j-- {
		def[j] += def[j+1]
	}
	m.suffixDeficit = def
	return evals
}

// reservedBeyond returns the headroom to reserve for kernels at or after
// position end.
func (m *MPC) reservedBeyond(end int) float64 {
	if m.suffixDeficit == nil || end >= len(m.suffixDeficit) {
		return 0
	}
	return m.suffixDeficit[end]
}

// Observe implements sim.Policy.
func (m *MPC) Observe(o sim.Observation) {
	m.tracker.Add(o.Insts, o.TimeMS)
	m.ext.Observe(record(o))
	emitModelError(m.obsv, m.calib, m.Name(), m.appName, o)
	m.calib.Feedback(o.Counters, o.Config, o.TimeMS, o.GPUPowerW)
	m.elapsedMS += o.TimeMS + o.OverheadMS
	if m.profiling {
		m.profile.Insts = append(m.profile.Insts, o.Insts)
		m.profile.TimeMS = append(m.profile.TimeMS, o.TimeMS)
		m.ppkOverheadMS += o.OverheadMS
	}
	m.last = o
	m.haveObs = true
}

// AvgHorizonFrac returns the average adaptive horizon as a fraction of N
// over all MPC-mode decisions so far — the Fig. 15 metric. ok is false if
// no MPC-mode decision has been made.
func (m *MPC) AvgHorizonFrac() (float64, bool) {
	if m.horizonCnt == 0 || m.n == 0 {
		return 0, false
	}
	return m.horizonSum / float64(m.horizonCnt) / float64(m.n), true
}

// PPKOverheadMS returns the measured T_PPK from the profiling run.
func (m *MPC) PPKOverheadMS() float64 { return m.ppkOverheadMS }

// StorageBytes returns the pattern extractor's record storage.
func (m *MPC) StorageBytes() int { return m.ext.StorageBytes() }
