// Package policy implements the power-management schemes the paper
// evaluates as sim.Policy implementations: Predict Previous Kernel (the
// state-of-the-art history-based scheme), Theoretically Optimal (the
// impractical global optimum), and MPC (the paper's contribution, wiring
// the core optimizer, pattern extractor, predictor and adaptive horizon
// together).
package policy

import (
	"mpcdvfs/internal/core"
	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/obs"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/telemetry"
)

// PPK is the Predict Previous Kernel scheme (§II-E, §III): it assumes the
// kernel that just finished will repeat next, and picks the configuration
// minimizing that kernel's predicted energy subject to the cumulative
// throughput constraint of Eq. 2, via an exhaustive O(M) sweep. It
// represents history-based state of the art (Harmonia, Equalizer, …): no
// future knowledge, but full feedback.
type PPK struct {
	opt     *core.Optimizer
	calib   *predict.Calibrated
	tracker *core.Tracker
	space   hw.Space

	appName string
	obsv    obs.Observer
	tc      *telemetry.Context
	last    sim.Observation
	haveObs bool
}

// NewPPK returns a PPK policy over the given predictor and space. The
// predictor is wrapped with the runtime measurement-feedback loop
// (predict.Calibrated), as in the feedback-driven schemes PPK stands for.
func NewPPK(m predict.Model, space hw.Space) *PPK {
	c := predict.NewCalibrated(m)
	return &PPK{opt: core.NewOptimizer(c, space), calib: c, space: space, obsv: obs.Nop{}}
}

// Name implements sim.Policy.
func (p *PPK) Name() string { return "ppk" }

// SetWorkers shards PPK's exhaustive O(M) sweep across n goroutines
// (<= 0 uses the process default, 1 is serial); decisions are
// byte-identical for every value. Returns p for chaining.
func (p *PPK) SetWorkers(n int) *PPK {
	p.opt.Workers = n
	return p
}

// SetSweepSubmitter routes PPK's exhaustive sweeps through a cross-
// session batch coordinator (see WithSweepSubmitter for the MPC
// equivalent and the bit-exactness argument). model must be the raw
// *predict.RandomForest the policy was built over; any other model (or
// a nil submit) leaves the direct path in place. Returns p for
// chaining.
func (p *PPK) SetSweepSubmitter(model predict.Model, submit predict.SweepSubmit) *PPK {
	if submit == nil {
		return p
	}
	if rfm, ok := model.(*predict.RandomForest); ok {
		p.opt.Sweep = predict.NewRemoteSweep(p.calib, rfm, submit)
	}
	return p
}

// SetObserver implements obs.Instrumentable: PPK reports per-kernel
// prediction errors when an observer is attached.
func (p *PPK) SetObserver(o obs.Observer) {
	if o == nil {
		o = obs.Nop{}
	}
	p.obsv = o
}

// SetTraceContext implements telemetry.Traceable; tracing never
// perturbs decisions.
func (p *PPK) SetTraceContext(tc *telemetry.Context) {
	p.tc = tc
	p.opt.Trace = tc
}

// Begin implements sim.Policy.
func (p *PPK) Begin(info sim.RunInfo) {
	p.appName = info.AppName
	p.tracker = core.NewTracker(info.Target.Throughput())
	p.haveObs = false
}

// Decide implements sim.Policy. The very first kernel runs at fail-safe
// since no performance counters exist to predict it (§V-B).
func (p *PPK) Decide(i int) sim.Decision {
	if !p.haveObs {
		return sim.Decision{Config: p.opt.FailSafe(), Evals: 0, Fallback: obs.FallbackColdStart}
	}
	head := p.tracker.HeadroomMS(p.last.Insts)
	sp := p.tc.Start(telemetry.SpanSearch)
	res := p.opt.ExhaustiveSearch(p.last.Counters, head)
	sp.End()
	return sim.Decision{
		Config: res.Config, Evals: res.Evals, SearchIters: 1,
		PredTimeMS: res.Est.TimeMS, PredGPUPowerW: res.Est.GPUPowerW,
	}
}

// Observe implements sim.Policy.
func (p *PPK) Observe(o sim.Observation) {
	p.tracker.Add(o.Insts, o.TimeMS)
	emitModelError(p.obsv, p.calib, p.Name(), p.appName, o)
	p.calib.Feedback(o.Counters, o.Config, o.TimeMS, o.GPUPowerW)
	p.last = o
	p.haveObs = true
}

// emitModelError reports the predicted-vs-measured outcome of an executed
// kernel against the calibrated predictor's state before this
// observation's feedback is applied — the error the Fig. 6 loop is about
// to absorb. It costs one predictor evaluation, so it runs only when a
// real observer is attached.
func emitModelError(o obs.Observer, calib *predict.Calibrated, policy, app string, ob sim.Observation) {
	if !obs.Enabled(o) {
		return
	}
	est := calib.PredictKernel(ob.Counters, ob.Config)
	o.OnModelError(obs.ModelErrorEvent{
		Policy:          policy,
		App:             app,
		Index:           ob.Index,
		PredictedTimeMS: est.TimeMS,
		MeasuredTimeMS:  ob.TimeMS,
		PredictedPowerW: est.GPUPowerW,
		MeasuredPowerW:  ob.GPUPowerW,
	})
}

// record converts an observation into the extractor's stored form.
func record(obs sim.Observation) counters.Record {
	return counters.Record{Counters: obs.Counters, TimeMS: obs.TimeMS, PowerW: obs.GPUPowerW}
}
