package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format this package writes.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every family in the Prometheus text exposition
// format, families sorted by name and children sorted by label values,
// so output is deterministic for a given registry state.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if err := f.writeText(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry in text
// exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WriteText(w)
	})
}

func (f *family) writeText(w *bufio.Writer) error {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Snapshot children and label values under the lock; atomic reads of
	// the values themselves happen after.
	type snap struct {
		lvs []string
		c   child
	}
	snaps := make([]snap, len(keys))
	for i, k := range keys {
		snaps[i] = snap{f.labelSet[k], f.children[k]}
	}
	f.mu.RUnlock()

	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')

	for _, s := range snaps {
		switch c := s.c.(type) {
		case *Counter:
			writeSample(w, f.name, "", f.labels, s.lvs, "", "", c.Value())
		case *Gauge:
			writeSample(w, f.name, "", f.labels, s.lvs, "", "", c.Value())
		case *Histogram:
			cum := uint64(0)
			for i, ub := range c.upper {
				cum += c.counts[i].Load()
				writeSample(w, f.name, "_bucket", f.labels, s.lvs, "le", formatLe(ub), float64(cum))
			}
			cum += c.counts[len(c.upper)].Load()
			writeSample(w, f.name, "_bucket", f.labels, s.lvs, "le", "+Inf", float64(cum))
			writeSample(w, f.name, "_sum", f.labels, s.lvs, "", "", c.Sum())
			writeSample(w, f.name, "_count", f.labels, s.lvs, "", "", float64(c.Count()))
		}
	}
	return nil
}

// writeSample emits one exposition line:
// name[suffix]{labels...,extraName="extraValue"} value
func writeSample(w *bufio.Writer, name, suffix string, labels, values []string, extraName, extraValue string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if len(labels) > 0 || extraName != "" {
		w.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				w.WriteByte(',')
			}
			first = false
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if extraName != "" {
			if !first {
				w.WriteByte(',')
			}
			w.WriteString(extraName)
			w.WriteString(`="`)
			w.WriteString(extraValue)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// formatValue renders a sample value; the exposition format spells
// infinities +Inf/-Inf and NaN NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound for the le label.
func formatLe(v float64) string { return formatValue(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
