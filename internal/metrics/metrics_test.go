package metrics

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCounter hammers one counter and one histogram child from
// many goroutines; run under -race this is the registry's concurrency
// contract, and the final values must be exact (no lost updates).
func TestConcurrentCounter(t *testing.T) {
	r := New()
	cv := r.Counter("test_ops_total", "ops", "worker")
	gv := r.Gauge("test_depth", "depth")
	hv := r.Histogram("test_lat_ms", "latency", []float64{1, 10, 100})

	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := cv.With("w")
			h := hv.With()
			for i := 0; i < perG; i++ {
				c.Inc()
				gv.With().Set(float64(g))
				h.Observe(float64(i % 200))
			}
		}(g)
	}
	wg.Wait()

	if got := cv.With("w").Value(); got != goroutines*perG {
		t.Errorf("counter = %v, want %d", got, goroutines*perG)
	}
	if got := hv.With().Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramBuckets pins the le bucket semantics: a value lands in the
// first bucket whose upper bound is >= v (le = less-or-equal), and
// exposition counts are cumulative.
func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("test_h", "", []float64{1, 5, 10}).With()

	// Boundary values: exactly on a bound belongs to that bound's bucket.
	for _, v := range []float64{0.5, 1.0, 1.0001, 5.0, 9.99, 10.0, 10.01, 1e9} {
		h.Observe(v)
	}
	// Non-cumulative per-bucket expectation:
	//   le=1: {0.5, 1.0}            -> 2
	//   le=5: {1.0001, 5.0}         -> 2
	//   le=10: {9.99, 10.0}         -> 2
	//   +Inf: {10.01, 1e9}          -> 2
	want := []uint64{2, 2, 2, 2}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0001 + 5 + 9.99 + 10 + 10.01 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-9*wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`test_h_bucket{le="1"} 2`,
		`test_h_bucket{le="5"} 4`,
		`test_h_bucket{le="10"} 6`,
		`test_h_bucket{le="+Inf"} 8`,
		`test_h_count 8`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q in:\n%s", line, out)
		}
	}
}

// TestExpositionGolden pins the full text format: HELP/TYPE annotations,
// sorted families, sorted children, label escaping.
func TestExpositionGolden(t *testing.T) {
	r := New()
	c := r.Counter("zz_total", "last family", "app")
	c.With("spmv").Add(3)
	c.With(`we"ird\val`).Inc()
	g := r.Gauge("aa_gauge", "first family\nwith newline")
	g.With().Set(2.5)
	h := r.Histogram("mm_hist", "middle", []float64{0.5, 2}, "policy")
	h.With("mpc").Observe(0.25)
	h.With("mpc").Observe(1)
	h.With("mpc").Observe(99)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_gauge first family\nwith newline
# TYPE aa_gauge gauge
aa_gauge 2.5
# HELP mm_hist middle
# TYPE mm_hist histogram
mm_hist_bucket{policy="mpc",le="0.5"} 1
mm_hist_bucket{policy="mpc",le="2"} 2
mm_hist_bucket{policy="mpc",le="+Inf"} 3
mm_hist_sum{policy="mpc"} 100.25
mm_hist_count{policy="mpc"} 3
# HELP zz_total last family
# TYPE zz_total counter
zz_total{app="spmv"} 3
zz_total{app="we\"ird\\val"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHandler checks the HTTP surface: content type and body.
func TestHandler(t *testing.T) {
	r := New()
	r.Counter("h_total", "").With().Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != TextContentType {
		t.Errorf("content type = %q, want %q", ct, TextContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "h_total 1\n") {
		t.Errorf("body missing sample:\n%s", body)
	}
}

// TestReregistration: identical re-registration returns the same family;
// a conflicting one panics.
func TestReregistration(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "x", "app")
	b := r.Counter("x_total", "x", "app")
	a.With("k").Add(2)
	if got := b.With("k").Value(); got != 2 {
		t.Errorf("re-registered family not shared: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("x_total", "x", "app")
}

// TestValidation pins the name and bucket validation panics.
func TestValidation(t *testing.T) {
	r := New()
	for _, f := range []func(){
		func() { r.Counter("0bad", "") },
		func() { r.Counter("bad-name", "") },
		func() { r.Counter("ok_total", "", "le") },
		func() { r.Histogram("h1", "", nil) },
		func() { r.Histogram("h2", "", []float64{2, 1}) },
		func() { r.Histogram("h3", "", []float64{1, math.Inf(1)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestGaugeAndBucketsHelpers covers Add/Set and the bucket constructors.
func TestGaugeAndBucketsHelpers(t *testing.T) {
	r := New()
	g := r.Gauge("g", "").With()
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %v, want 7", g.Value())
	}
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
}
