// Package metrics is a dependency-free, concurrency-safe metrics
// registry for the MPC runtime: counters, gauges and fixed-bucket
// histograms with an atomic hot path, exported in the Prometheus text
// exposition format (text/plain; version=0.0.4).
//
// It deliberately mirrors the shape of the Prometheus client library —
// families with label dimensions, children addressed by label values —
// without importing it: the ROADMAP's production north star wants the
// runtime scrapeable by standard tooling, and the repo's stdlib-only
// constraint wants no new go.mod entries.
//
// Hot-path cost: Counter.Add / Gauge.Set / Histogram.Observe are
// lock-free (atomic CAS on float bits, atomic bucket increments).
// Vec.With takes a read lock for the child lookup; callers on very hot
// paths should cache the returned child.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates the supported metric types.
type Kind int

// Metric kinds, matching the Prometheus TYPE annotations.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind?(%d)", int(k))
}

// Registry holds metric families and renders them for scraping. The zero
// value is not usable; call New.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds (exclusive of +Inf)

	mu       sync.RWMutex
	children map[string]child
	labelSet map[string][]string // child key -> label values
}

type child interface{}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter registers (or returns the previously registered) counter
// family. Label values are supplied later via CounterVec.With. Panics on
// an invalid name or a conflicting earlier registration — both are
// programmer errors, as in the Prometheus client.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	f := r.register(name, help, KindCounter, nil, labels)
	return &CounterVec{f: f}
}

// Gauge registers (or returns the previously registered) gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	f := r.register(name, help, KindGauge, nil, labels)
	return &GaugeVec{f: f}
}

// Histogram registers (or returns the previously registered) histogram
// family with the given bucket upper bounds (ascending; +Inf is implicit
// and must not be listed).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		panic("metrics: histogram " + name + " needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s buckets not ascending at %d", name, i))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		panic("metrics: histogram " + name + " must not list +Inf explicitly")
	}
	f := r.register(name, help, KindHistogram, buckets, labels)
	return &HistogramVec{f: f}
}

// register adds or revalidates a family. Re-registration with an
// identical schema returns the existing family so independent components
// can share a registry without coordination.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []string) *family {
	if !validName(name) {
		panic("metrics: invalid metric name " + name)
	}
	for _, l := range labels {
		if !validName(l) || strings.HasPrefix(l, "__") || l == "le" {
			panic("metrics: invalid label name " + l + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic("metrics: conflicting re-registration of " + name)
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]child{},
		labelSet: map[string][]string{},
	}
	r.families[name] = f
	return f
}

// validName reports whether s matches the Prometheus metric/label name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //mpclint:ignore float-eq re-registration must see bit-identical bucket boundaries; a tolerance would silently merge distinct histograms
			return false
		}
	}
	return true
}

// childKey joins label values with an unprintable separator; label values
// containing \xff are legal but vanishingly rare, and a collision only
// merges two children of the same family.
func childKey(lvs []string) string { return strings.Join(lvs, "\xff") }

// lookup finds or creates a child for the given label values.
func (f *family) lookup(lvs []string, mk func() child) child {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
	k := childKey(lvs)
	f.mu.RLock()
	c, ok := f.children[k]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[k]; ok {
		return c
	}
	c = mk()
	f.children[k] = c
	f.labelSet[k] = append([]string(nil), lvs...)
	return c
}

// ---- Counter ----

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increments the counter by v. Panics if v is negative.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decremented")
	}
	addFloat(&c.bits, v)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// CounterVec is a counter family; With addresses one child by its label
// values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.lookup(labelValues, func() child { return &Counter{} }).(*Counter)
}

// ---- Gauge ----

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments (or, with a negative v, decrements) the gauge.
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.lookup(labelValues, func() child { return &Gauge{} }).(*Gauge)
}

// ---- Histogram ----

// Histogram counts observations into fixed buckets. Buckets store
// per-bucket (non-cumulative) counts; exposition cumulates them.
type Histogram struct {
	upper   []float64 // shared with the family; read-only
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; past the end means +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramVec is a histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.lookup(labelValues, func() child {
		return &Histogram{
			upper:  v.f.buckets,
			counts: make([]atomic.Uint64, len(v.f.buckets)+1),
		}
	}).(*Histogram)
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// LinearBuckets returns count bucket bounds starting at start, spaced by
// width.
func LinearBuckets(start, width float64, count int) []float64 {
	if count < 1 {
		panic("metrics: LinearBuckets needs count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bucket bounds starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if count < 1 || start <= 0 || factor <= 1 {
		panic("metrics: ExponentialBuckets needs count >= 1, start > 0, factor > 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
