package telemetry

import (
	"bytes"
	"testing"
	"time"
)

// findByName returns the spans named name, in ring order.
func findByName(recs []SpanRecord, name string) []SpanRecord {
	var out []SpanRecord
	for _, r := range recs {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

func TestSpanTree(t *testing.T) {
	tr := NewTracer(64, 1)
	c := tr.NewContext("s1")

	root := c.StartRoot(SpanDecide, 7)
	if !c.Active() {
		t.Fatal("context not active inside a sampled root")
	}
	c.RecordSince(SpanQueue, time.Now().Add(-time.Millisecond))
	search := c.Start(SpanSearch)
	feat := c.Start(SpanFeaturize)
	feat.End()
	t0 := c.StartPhase()
	if t0.IsZero() {
		t.Fatal("StartPhase returned zero time while active")
	}
	c.EndPhase(SpanForestEval, t0)
	search.End()
	root.End()
	if c.Active() {
		t.Fatal("context still active after root end")
	}

	recs := tr.Snapshot(nil)
	if len(recs) != 5 {
		t.Fatalf("got %d spans, want 5 (root, queue, search, featurize, forest agg): %+v", len(recs), recs)
	}
	roots := findByName(recs, SpanDecide)
	if len(roots) != 1 || roots[0].ParentID != 0 {
		t.Fatalf("bad root: %+v", roots)
	}
	rootRec := roots[0]
	if rootRec.Session != "s1" || rootRec.Index != 7 {
		t.Fatalf("root session/index = %q/%d, want s1/7", rootRec.Session, rootRec.Index)
	}
	for _, name := range []string{SpanQueue, SpanSearch} {
		got := findByName(recs, name)
		if len(got) != 1 || got[0].ParentID != rootRec.SpanID {
			t.Fatalf("%s not a child of root: %+v", name, got)
		}
		if got[0].TraceID != rootRec.TraceID {
			t.Fatalf("%s trace id %d, want %d", name, got[0].TraceID, rootRec.TraceID)
		}
	}
	searchRec := findByName(recs, SpanSearch)[0]
	featRec := findByName(recs, SpanFeaturize)
	if len(featRec) != 1 || featRec[0].ParentID != searchRec.SpanID {
		t.Fatalf("featurize not a child of search: %+v", featRec)
	}
	agg := findByName(recs, SpanForestEval)
	if len(agg) != 1 || !agg[0].Agg || agg[0].ParentID != searchRec.SpanID {
		t.Fatalf("forest-eval aggregate wrong: %+v", agg)
	}
	queueRec := findByName(recs, SpanQueue)[0]
	if queueRec.DurNS < int64(time.Millisecond) {
		t.Fatalf("queue span duration %dns, want >= 1ms", queueRec.DurNS)
	}
}

func TestSampling(t *testing.T) {
	tr := NewTracer(256, 3)
	c := tr.NewContext("s")
	for i := 0; i < 9; i++ {
		root := c.StartRoot(SpanDecide, i)
		root.End()
	}
	roots, sampled := tr.Stats()
	if roots != 9 || sampled != 3 {
		t.Fatalf("roots=%d sampled=%d, want 9/3", roots, sampled)
	}
	if got := len(tr.Snapshot(nil)); got != 3 {
		t.Fatalf("ring holds %d spans, want 3", got)
	}
}

func TestRingWrap(t *testing.T) {
	tr := NewTracer(4, 1)
	c := tr.NewContext("s")
	for i := 0; i < 10; i++ {
		root := c.StartRoot(SpanDecide, i)
		root.End()
	}
	recs := tr.Snapshot(nil)
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	// Oldest-first: indexes 6,7,8,9.
	for i, r := range recs {
		if r.Index != 6+i {
			t.Fatalf("ring[%d].Index = %d, want %d", i, r.Index, 6+i)
		}
	}
}

func TestNilAndDisabledSafe(t *testing.T) {
	var c *Context
	if c.Active() {
		t.Fatal("nil context active")
	}
	root := c.StartRoot(SpanDecide, 0)
	c.RecordSince(SpanQueue, time.Now())
	c.EndPhase(SpanForestEval, c.StartPhase())
	c.Start(SpanSearch).End()
	root.End() // all no-ops

	// Disabled tracer: context exists, nothing samples.
	tr := NewTracer(8, 0)
	d := tr.NewContext("s")
	r := d.StartRoot(SpanDecide, 0)
	if d.Active() {
		t.Fatal("sample=0 context active")
	}
	r.End()
	if got := len(tr.Snapshot(nil)); got != 0 {
		t.Fatalf("disabled tracer recorded %d spans", got)
	}
}

// TestDisabledPathZeroAlloc pins the zero-alloc-when-disabled contract:
// a nil context and an unsampled context must not allocate per
// decision.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var nilCtx *Context
	if n := testing.AllocsPerRun(1000, func() {
		root := nilCtx.StartRoot(SpanDecide, 0)
		sp := nilCtx.Start(SpanSearch)
		nilCtx.EndPhase(SpanForestEval, nilCtx.StartPhase())
		sp.End()
		root.End()
	}); n != 0 {
		t.Fatalf("nil context allocates %.1f/op, want 0", n)
	}

	tr := NewTracer(8, 0)
	c := tr.NewContext("s")
	if n := testing.AllocsPerRun(1000, func() {
		root := c.StartRoot(SpanDecide, 0)
		sp := c.Start(SpanSearch)
		c.EndPhase(SpanForestEval, c.StartPhase())
		sp.End()
		root.End()
	}); n != 0 {
		t.Fatalf("sample=0 context allocates %.1f/op, want 0", n)
	}
}

// TestActiveTraceSteadyStateZeroAlloc pins that even a 100%-sampled
// trace allocates nothing per decision once the context's record
// buffer has grown (the first trace pays the one buffer allocation).
func TestActiveTraceSteadyStateZeroAlloc(t *testing.T) {
	tr := NewTracer(64, 1)
	c := tr.NewContext("s")
	warm := func() {
		root := c.StartRoot(SpanDecide, 0)
		sp := c.Start(SpanSearch)
		c.EndPhase(SpanForestEval, c.StartPhase())
		sp.End()
		root.End()
	}
	warm()
	if n := testing.AllocsPerRun(500, warm); n != 0 {
		t.Fatalf("steady-state sampled trace allocates %.1f/op, want 0", n)
	}
}

func TestDepthBoundAndMismatchedEnd(t *testing.T) {
	tr := NewTracer(256, 1)
	c := tr.NewContext("s")
	root := c.StartRoot(SpanDecide, 0)
	spans := make([]Span, 0, maxSpanDepth+2)
	for i := 0; i < maxSpanDepth+2; i++ {
		spans = append(spans, c.Start(SpanSearch))
	}
	// Ending a parent before its still-open child is ignored.
	root.End()
	if !c.Active() {
		t.Fatal("out-of-order root end closed the trace")
	}
	for i := len(spans) - 1; i >= 0; i-- {
		spans[i].End()
	}
	root.End()
	if c.Active() {
		t.Fatal("trace still open after ordered unwind")
	}
	recs := tr.Snapshot(nil)
	// Root + (maxSpanDepth-1) children fit; the overflow starts were inert.
	if len(recs) != maxSpanDepth {
		t.Fatalf("got %d spans, want %d", len(recs), maxSpanDepth)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(64, 1)
	c := tr.NewContext("sess-9")
	root := c.StartRoot(SpanDecide, 3)
	c.Start(SpanSearch).End()
	root.End()
	recs := tr.Snapshot(nil)

	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip: %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if recs[i] != back[i] {
			t.Fatalf("record %d changed in round trip:\n  %+v\n  %+v", i, recs[i], back[i])
		}
	}
}

func BenchmarkTelemetrySpanDisabled(b *testing.B) {
	tr := NewTracer(64, 0)
	c := tr.NewContext("s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := c.StartRoot(SpanDecide, i)
		sp := c.Start(SpanSearch)
		c.EndPhase(SpanForestEval, c.StartPhase())
		sp.End()
		root.End()
	}
}

func BenchmarkTelemetrySpanNilContext(b *testing.B) {
	var c *Context
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := c.StartRoot(SpanDecide, i)
		sp := c.Start(SpanSearch)
		c.EndPhase(SpanForestEval, c.StartPhase())
		sp.End()
		root.End()
	}
}

func BenchmarkTelemetrySpanSampled(b *testing.B) {
	tr := NewTracer(4096, 1)
	c := tr.NewContext("s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := c.StartRoot(SpanDecide, i)
		sp := c.Start(SpanSearch)
		c.EndPhase(SpanForestEval, c.StartPhase())
		sp.End()
		root.End()
	}
}
