package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzSpanJSONL feeds arbitrary byte streams through ReadSpansJSONL:
// every input must either parse cleanly or return an error — never
// panic — and a clean parse must survive a write/read round trip with
// the record count preserved.
func FuzzSpanJSONL(f *testing.F) {
	// A genuine two-span dump.
	tr := NewTracer(16, 1)
	c := tr.NewContext("fuzz")
	root := c.StartRoot(SpanDecide, 1)
	c.Start(SpanSearch).End()
	root.End()
	var genuine bytes.Buffer
	if err := WriteSpansJSONL(&genuine, tr.Snapshot(nil)); err != nil {
		f.Fatal(err)
	}
	f.Add(genuine.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"trace_id":1,"span_id":2,"name":"mpcdvfs_decide"}` + "\n"))
	f.Add([]byte(`{"trace_id":1` + "\n")) // truncated JSON
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"name":"x","agg":true,"dur_ns":-5}` + "\n{}\n"))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"name\":\"\\u0000\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadSpansJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := WriteSpansJSONL(&buf, recs); werr != nil {
			t.Fatalf("re-encode of parsed records failed: %v", werr)
		}
		back, rerr := ReadSpansJSONL(&buf)
		if rerr != nil {
			t.Fatalf("round trip failed to re-parse: %v", rerr)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(back))
		}
		// Non-blank input lines either all parsed or errored above;
		// blank-line skipping must not invent records.
		nonBlank := 0
		for _, l := range strings.Split(string(data), "\n") {
			if len(l) > 0 {
				nonBlank++
			}
		}
		if len(recs) > nonBlank {
			t.Fatalf("parsed %d records from %d non-blank lines", len(recs), nonBlank)
		}
	})
}
