package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"mpcdvfs/internal/metrics"
)

// maxSessionAccounts bounds the per-session accounting map: a
// long-lived server churns through many short sessions (one per client
// replay), and accounting is a debug surface, not a billing system.
// When the bound is hit, the oldest session's row is evicted; its
// energy totals stay in the per-config buckets and the global tallies.
const maxSessionAccounts = 256

// queueWindow bounds the per-session queue-wait window backing the p99
// estimate.
const queueWindow = 128

// waitWindow is a rolling window of queue waits (ms). p99 sorts a copy
// on snapshot, so the record path stays O(1).
type waitWindow struct {
	vals   []float64
	pos, n int
}

func (w *waitWindow) push(v float64) {
	if w.vals == nil {
		w.vals = make([]float64, queueWindow)
	}
	w.vals[w.pos] = v
	w.pos++
	if w.pos == len(w.vals) {
		w.pos = 0
	}
	if w.n < len(w.vals) {
		w.n++
	}
}

// p99 returns the window's 99th-percentile wait (0 when empty).
func (w *waitWindow) p99() float64 {
	if w.n == 0 {
		return 0
	}
	tmp := make([]float64, w.n)
	copy(tmp, w.vals[:w.n])
	sort.Float64s(tmp)
	return tmp[int(0.99*float64(w.n-1))]
}

type sessionAcct struct {
	decisions    uint64
	observations uint64
	fallbacks    uint64
	predictedMJ  float64
	measuredMJ   float64
	waits        waitWindow
}

type energyAcct struct {
	observations uint64
	predictedMJ  float64
	measuredMJ   float64
}

// Accounting is the cumulative energy and decision ledger of a serving
// process. Safe for concurrent use from many session goroutines.
type Accounting struct {
	mu        sync.Mutex
	sessions  map[string]*sessionAcct
	order     []string // session insertion order, for eviction
	configs   map[string]*energyAcct
	fallbacks map[string]uint64
	horizons  map[int]uint64

	instr atomic.Pointer[acctInstr]
}

type acctInstr struct {
	energyMJ  *metrics.CounterVec // {kind}
	fallbacks *metrics.CounterVec // {reason}
	horizon   *metrics.Histogram
	queueWait *metrics.Histogram
}

// NewAccounting returns an empty ledger.
func NewAccounting() *Accounting {
	return &Accounting{
		sessions:  map[string]*sessionAcct{},
		configs:   map[string]*energyAcct{},
		fallbacks: map[string]uint64{},
		horizons:  map[int]uint64{},
	}
}

// Instrument mirrors the ledger into reg.
func (a *Accounting) Instrument(reg *metrics.Registry) {
	if a == nil {
		return
	}
	a.instr.Store(&acctInstr{
		energyMJ: reg.Counter("mpcdvfs_acct_energy_mj_total",
			"Cumulative kernel energy attributed by the telemetry ledger, predicted vs measured (millijoules).",
			"kind"),
		fallbacks: reg.Counter("mpcdvfs_acct_fallbacks_total",
			"Served decisions that took a degraded path, by reason.", "reason"),
		horizon: reg.Histogram("mpcdvfs_acct_horizon",
			"Prediction-horizon length of served decisions (kernels).",
			metrics.LinearBuckets(0, 4, 16)).With(),
		queueWait: reg.Histogram("mpcdvfs_acct_queue_wait_ms",
			"Session queue wait of served decide operations, in milliseconds.",
			metrics.ExponentialBuckets(0.01, 2, 16)).With(),
	})
}

// session returns (creating if needed) the row for id. Caller holds mu.
func (a *Accounting) session(id string) *sessionAcct {
	s, ok := a.sessions[id]
	if !ok {
		if len(a.sessions) >= maxSessionAccounts {
			oldest := a.order[0]
			a.order = a.order[1:]
			delete(a.sessions, oldest)
		}
		s = &sessionAcct{}
		a.sessions[id] = s
		a.order = append(a.order, id)
	}
	return s
}

// RecordDecision accounts one served decision: its queue wait, horizon
// length, and fallback reason ("" for a steady-state decision).
func (a *Accounting) RecordDecision(sessionID, fallback string, horizon int, queueWaitMS float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	s := a.session(sessionID)
	s.decisions++
	s.waits.push(queueWaitMS)
	if fallback != "" {
		s.fallbacks++
		a.fallbacks[fallback]++
	}
	a.horizons[horizon]++
	a.mu.Unlock()

	if in := a.instr.Load(); in != nil {
		if fallback != "" {
			in.fallbacks.With(fallback).Inc()
		}
		in.horizon.Observe(float64(horizon))
		in.queueWait.Observe(queueWaitMS)
	}
}

// RecordObservation accounts one kernel's energy outcome: the energy
// the predictor promised for the chosen configuration against the
// energy the measurement implies, attributed to the session and to the
// configuration bucket (hw.Config.String of the executed config).
func (a *Accounting) RecordObservation(sessionID, config string, predictedMJ, measuredMJ float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	s := a.session(sessionID)
	s.observations++
	s.predictedMJ += predictedMJ
	s.measuredMJ += measuredMJ
	c, ok := a.configs[config]
	if !ok {
		c = &energyAcct{}
		a.configs[config] = c
	}
	c.observations++
	c.predictedMJ += predictedMJ
	c.measuredMJ += measuredMJ
	a.mu.Unlock()

	if in := a.instr.Load(); in != nil {
		in.energyMJ.With("predicted").Add(predictedMJ)
		in.energyMJ.With("measured").Add(measuredMJ)
	}
}

// SessionSummary is one session's ledger row.
type SessionSummary struct {
	SessionID         string  `json:"session_id"`
	Decisions         uint64  `json:"decisions"`
	Observations      uint64  `json:"observations"`
	Fallbacks         uint64  `json:"fallbacks"`
	PredictedEnergyMJ float64 `json:"predicted_energy_mj"`
	MeasuredEnergyMJ  float64 `json:"measured_energy_mj"`
	QueueWaitP99MS    float64 `json:"queue_wait_p99_ms"`
}

// ConfigEnergy is one configuration bucket's energy ledger.
type ConfigEnergy struct {
	Config            string  `json:"config"`
	Observations      uint64  `json:"observations"`
	PredictedEnergyMJ float64 `json:"predicted_energy_mj"`
	MeasuredEnergyMJ  float64 `json:"measured_energy_mj"`
}

// Snapshot is the ledger at one instant.
type Snapshot struct {
	Sessions  []SessionSummary  `json:"sessions"`
	Configs   []ConfigEnergy    `json:"configs"`
	Fallbacks map[string]uint64 `json:"fallbacks"`
	// Horizons histograms served horizon lengths (key = length).
	Horizons map[int]uint64 `json:"horizons"`
}

// Snapshot returns the ledger's current state, sessions and config
// buckets sorted by key.
func (a *Accounting) Snapshot() Snapshot {
	if a == nil {
		return Snapshot{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	snap := Snapshot{
		Sessions:  make([]SessionSummary, 0, len(a.sessions)),
		Configs:   make([]ConfigEnergy, 0, len(a.configs)),
		Fallbacks: make(map[string]uint64, len(a.fallbacks)),
		Horizons:  make(map[int]uint64, len(a.horizons)),
	}
	for _, id := range a.order {
		s := a.sessions[id]
		snap.Sessions = append(snap.Sessions, SessionSummary{
			SessionID:         id,
			Decisions:         s.decisions,
			Observations:      s.observations,
			Fallbacks:         s.fallbacks,
			PredictedEnergyMJ: s.predictedMJ,
			MeasuredEnergyMJ:  s.measuredMJ,
			QueueWaitP99MS:    s.waits.p99(),
		})
	}
	sort.Slice(snap.Sessions, func(i, j int) bool {
		return snap.Sessions[i].SessionID < snap.Sessions[j].SessionID
	})
	keys := make([]string, 0, len(a.configs))
	for k := range a.configs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := a.configs[k]
		snap.Configs = append(snap.Configs, ConfigEnergy{
			Config:            k,
			Observations:      c.observations,
			PredictedEnergyMJ: c.predictedMJ,
			MeasuredEnergyMJ:  c.measuredMJ,
		})
	}
	for k, v := range a.fallbacks {
		snap.Fallbacks[k] = v
	}
	for k, v := range a.horizons {
		snap.Horizons[k] = v
	}
	return snap
}
