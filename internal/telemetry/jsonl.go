package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteSpansJSONL streams recs as one JSON object per line — the same
// tailable shape as the obs event stream, so `tail -f | jq` works on a
// span dump too.
func WriteSpansJSONL(w io.Writer, recs []SpanRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("telemetry: span %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadSpansJSONL parses a span JSONL stream back into records. Blank
// lines are skipped; any malformed line fails the whole read with its
// line number, so a truncated dump is detected rather than silently
// shortened.
func ReadSpansJSONL(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: span JSONL line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: span JSONL line %d: %w", line+1, err)
	}
	return out, nil
}
