package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"mpcdvfs/internal/metrics"
)

// Span names of the decide path. Names follow the same mpcdvfs_ prefix
// contract as metric names (enforced by the mpclint span-name check),
// so one matcher selects the whole subsystem in any span store.
const (
	// SpanDecide is the root span of one configuration decision:
	// everything from the moment the session's owner goroutine picks
	// the operation up until the policy returns.
	SpanDecide = "mpcdvfs_decide"
	// SpanQueue covers the time a decide operation waited in the
	// session's FIFO queue before the owner goroutine ran it.
	SpanQueue = "mpcdvfs_queue"
	// SpanSearch covers the policy's configuration search (the window
	// optimization for MPC, the exhaustive sweep for PPK).
	SpanSearch = "mpcdvfs_search"
	// SpanFeaturize covers building the predictor's feature matrix
	// (counter prefix + per-configuration rows) in a batched sweep.
	SpanFeaturize = "mpcdvfs_featurize"
	// SpanForestEval covers Random-Forest inference: the two batched
	// compiled-forest evaluations of a space sweep, or (as an
	// aggregate span) the sum of scalar predictor calls a hill climb
	// spends within one enclosing span.
	SpanForestEval = "mpcdvfs_forest_eval"
	// SpanBatchWait covers the time a fused sweep request waited in
	// the batch coordinator — from submission until its epoch's fused
	// evaluation began.
	SpanBatchWait = "mpcdvfs_batch_wait"
	// SpanBatchEval covers the fused mega-batch forest evaluation the
	// request's epoch ran (shared across every request fused into it).
	SpanBatchEval = "mpcdvfs_batch_eval"
)

// SpanRecord is one finished span. Records are immutable once
// published to the tracer's ring.
type SpanRecord struct {
	TraceID  uint64 `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"` // 0 for roots
	Name     string `json:"name"`
	Session  string `json:"session,omitempty"` // owning session id ("" for local replays)
	Index    int    `json:"index"`             // kernel invocation index of the trace
	StartUNS int64  `json:"start_unix_ns"`
	DurNS    int64  `json:"dur_ns"`
	// Agg marks a synthetic span aggregating many short phases (e.g.
	// the scalar predictor calls of a hill climb): StartUNS is the
	// parent's start and DurNS the summed duration, not a contiguous
	// interval.
	Agg bool `json:"agg,omitempty"`
}

// Tracer owns the span id space, the 1-in-N sampling decision and the
// bounded ring of finished spans. One Tracer serves many Contexts (one
// per session); all Tracer state is internally synchronized.
type Tracer struct {
	sampleN uint64        // sample 1 in N roots; 0 = disabled
	ids     atomic.Uint64 // trace/span id source
	roots   atomic.Uint64 // root-start counter driving sampling
	sampled atomic.Uint64 // roots actually traced

	mu   sync.Mutex
	ring []SpanRecord
	pos  int // next write position
	n    int // valid records (<= len(ring))

	instr atomic.Pointer[tracerInstr]
}

type tracerInstr struct {
	roots, sampled, spans *metrics.Counter
}

// NewTracer returns a tracer retaining the last ringSize finished
// spans, sampling one in sampleN root spans (1 = every root, 0 =
// tracing disabled).
func NewTracer(ringSize, sampleN int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	if sampleN < 0 {
		sampleN = 0
	}
	return &Tracer{sampleN: uint64(sampleN), ring: make([]SpanRecord, ringSize)}
}

// SampleN returns the tracer's 1-in-N sampling rate (0 = disabled).
func (t *Tracer) SampleN() int {
	if t == nil {
		return 0
	}
	return int(t.sampleN)
}

// Stats returns the cumulative root-span starts and how many of them
// were sampled into traces.
func (t *Tracer) Stats() (roots, sampled uint64) {
	if t == nil {
		return 0, 0
	}
	return t.roots.Load(), t.sampled.Load()
}

// Instrument mirrors tracer traffic into reg.
func (t *Tracer) Instrument(reg *metrics.Registry) {
	if t == nil {
		return
	}
	t.instr.Store(&tracerInstr{
		roots: reg.Counter("mpcdvfs_trace_roots_total",
			"Root spans offered to the tracer (one per decide operation).").With(),
		sampled: reg.Counter("mpcdvfs_trace_sampled_total",
			"Root spans selected by 1-in-N sampling and recorded as traces.").With(),
		spans: reg.Counter("mpcdvfs_trace_spans_total",
			"Finished spans published to the retention ring (children included).").With(),
	})
}

// NewContext returns a trace context for one session. The context is
// owned by the session's single goroutine and is NOT safe for
// concurrent use; a nil *Context (or a nil receiver anywhere in its
// API) is safe and disables tracing.
func (t *Tracer) NewContext(session string) *Context {
	if t == nil {
		return nil
	}
	return &Context{t: t, session: session}
}

// Snapshot appends the ring's contents, oldest first, to dst and
// returns it. The returned records are copies; the ring keeps
// accepting spans concurrently.
func (t *Tracer) Snapshot(dst []SpanRecord) []SpanRecord {
	if t == nil {
		return dst
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == len(t.ring) {
		dst = append(dst, t.ring[t.pos:]...)
		dst = append(dst, t.ring[:t.pos]...)
		return dst
	}
	return append(dst, t.ring[:t.n]...)
}

// publish copies one finished trace's records into the ring.
func (t *Tracer) publish(recs []SpanRecord) {
	if len(recs) == 0 {
		return
	}
	if in := t.instr.Load(); in != nil {
		in.spans.Add(float64(len(recs)))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range recs {
		t.ring[t.pos] = r
		t.pos++
		if t.pos == len(t.ring) {
			t.pos = 0
		}
		if t.n < len(t.ring) {
			t.n++
		}
	}
}

// sampleRoot decides whether the next root span is traced.
func (t *Tracer) sampleRoot() bool {
	if t.sampleN == 0 {
		return false
	}
	n := t.roots.Add(1)
	if in := t.instr.Load(); in != nil {
		in.roots.Inc()
	}
	if (n-1)%t.sampleN != 0 {
		return false
	}
	t.sampled.Add(1)
	if in := t.instr.Load(); in != nil {
		in.sampled.Inc()
	}
	return true
}

// Span depth and aggregate-phase bounds per frame. Both are fixed-size
// so an active trace allocates nothing per span.
const (
	maxSpanDepth = 8
	maxAggPhases = 4
)

type aggPhase struct {
	name string
	ns   int64
}

type frame struct {
	name   string
	id     uint64
	parent uint64
	start  time.Time
	agg    [maxAggPhases]aggPhase
	nagg   int
}

// Context is one session's tracing state: a fixed-depth span stack and
// a reusable record buffer, flushed to the tracer's ring when the root
// span ends. All methods are nil-receiver-safe, so producers embed
// calls unconditionally and a disabled path costs one nil check.
//
// A Context must only be used from its session's owner goroutine (or a
// single-threaded replay loop); the tracer it publishes to is the
// shared, synchronized part.
type Context struct {
	t       *Tracer
	session string
	traceID uint64
	index   int
	depth   int
	frames  [maxSpanDepth]frame
	buf     []SpanRecord // finished records of the active trace
}

// Span is a handle to one started span. The zero Span is inert: End is
// a no-op, so unsampled and disabled paths hand the same value type
// around without branching at the call site.
type Span struct {
	c   *Context
	idx int32
}

// Active reports whether the context is inside a sampled trace. Guard
// optional timing work (per-call phase accumulation) with it.
func (c *Context) Active() bool { return c != nil && c.depth > 0 }

// StartRoot opens the root span of one decision for kernel invocation
// index, applying the tracer's sampling decision. The returned span
// must be ended by the same goroutine; ending it publishes the whole
// trace to the ring.
//
//mpclint:hotpath disabled and steady-state paths pinned at 0 allocs/op by TestDisabledPathZeroAlloc and TestActiveTraceSteadyStateZeroAlloc
func (c *Context) StartRoot(name string, index int) Span {
	if c == nil || c.t == nil || c.depth != 0 || !c.t.sampleRoot() {
		return Span{}
	}
	c.traceID = c.t.ids.Add(1)
	c.index = index
	if c.buf == nil {
		//mpclint:ignore hotpath-alloc one-time buffer build on a context's first sampled trace; steady state reuses it, pinned by TestActiveTraceSteadyStateZeroAlloc
		c.buf = make([]SpanRecord, 0, maxSpanDepth*(maxAggPhases+2))
	}
	c.frames[0] = frame{name: name, id: c.t.ids.Add(1), start: time.Now()}
	c.depth = 1
	return Span{c: c, idx: 0}
}

// Start opens a child span under the innermost open span. Outside a
// sampled trace (or past the depth bound) it returns an inert span.
//
//mpclint:hotpath pinned at 0 allocs/op by TestDisabledPathZeroAlloc and TestActiveTraceSteadyStateZeroAlloc
func (c *Context) Start(name string) Span {
	if c == nil || c.depth == 0 || c.depth >= maxSpanDepth {
		return Span{}
	}
	parent := c.frames[c.depth-1].id
	c.frames[c.depth] = frame{name: name, id: c.t.ids.Add(1), parent: parent, start: time.Now()}
	c.depth++
	return Span{c: c, idx: int32(c.depth - 1)}
}

// RecordSince emits an already-elapsed child span under the innermost
// open span — for intervals measured outside the owner goroutine, like
// the queue wait a handler clocked from enqueue time. No-op outside a
// sampled trace.
func (c *Context) RecordSince(name string, start time.Time) {
	if c == nil || c.depth == 0 {
		return
	}
	top := &c.frames[c.depth-1]
	c.buf = append(c.buf, SpanRecord{
		TraceID:  c.traceID,
		SpanID:   c.t.ids.Add(1),
		ParentID: top.id,
		Name:     name,
		Session:  c.session,
		Index:    c.index,
		StartUNS: start.UnixNano(),
		DurNS:    time.Since(start).Nanoseconds(),
	})
}

// Record emits an already-elapsed child span of explicit duration
// under the innermost open span — RecordSince for intervals whose
// endpoints were both clocked elsewhere (the batch coordinator stamps
// a fused request's evaluation start and duration; the session
// goroutine records them after being woken). Record reads no clock, so
// decision-path callers stay free of wall-clock taint. A zero start is
// a no-op, pairing with StartPhase's disabled path.
func (c *Context) Record(name string, start time.Time, d time.Duration) {
	if start.IsZero() || c == nil || c.depth == 0 {
		return
	}
	top := &c.frames[c.depth-1]
	c.buf = append(c.buf, SpanRecord{
		TraceID:  c.traceID,
		SpanID:   c.t.ids.Add(1),
		ParentID: top.id,
		Name:     name,
		Session:  c.session,
		Index:    c.index,
		StartUNS: start.UnixNano(),
		DurNS:    d.Nanoseconds(),
	})
}

// StartPhase returns a timestamp for EndPhase, or the zero time when
// the context is not inside a sampled trace — so hot paths pay the
// clock read only while a trace is active.
//
//mpclint:hotpath pinned at 0 allocs/op by TestDisabledPathZeroAlloc and TestActiveTraceSteadyStateZeroAlloc
func (c *Context) StartPhase() time.Time {
	if !c.Active() {
		return time.Time{}
	}
	return time.Now()
}

// EndPhase accumulates the time since t0 into the innermost open
// span's aggregate phase named name (see SpanRecord.Agg). A zero t0 is
// a no-op, pairing with StartPhase's disabled path. Each frame holds
// at most maxAggPhases distinct phase names; excess names are dropped.
//
//mpclint:hotpath pinned at 0 allocs/op by TestDisabledPathZeroAlloc and TestActiveTraceSteadyStateZeroAlloc
func (c *Context) EndPhase(name string, t0 time.Time) {
	if t0.IsZero() || c == nil || c.depth == 0 {
		return
	}
	ns := time.Since(t0).Nanoseconds()
	top := &c.frames[c.depth-1]
	for i := 0; i < top.nagg; i++ {
		if top.agg[i].name == name {
			top.agg[i].ns += ns
			return
		}
	}
	if top.nagg < maxAggPhases {
		top.agg[top.nagg] = aggPhase{name: name, ns: ns}
		top.nagg++
	}
}

// End closes the span: its record (and any aggregate-phase records)
// join the trace buffer, and closing the root publishes the whole
// trace to the tracer's ring. Ending an inert or out-of-order span is
// a no-op.
//
//mpclint:hotpath pinned at 0 allocs/op by TestDisabledPathZeroAlloc and TestActiveTraceSteadyStateZeroAlloc
func (s Span) End() {
	c := s.c
	if c == nil || c.depth != int(s.idx)+1 {
		return
	}
	f := &c.frames[c.depth-1]
	dur := time.Since(f.start)
	for i := 0; i < f.nagg; i++ {
		//mpclint:ignore hotpath-alloc bounded by maxSpanDepth*(maxAggPhases+2), the capacity StartRoot reserves; steady state pinned by TestActiveTraceSteadyStateZeroAlloc
		c.buf = append(c.buf, SpanRecord{
			TraceID:  c.traceID,
			SpanID:   c.t.ids.Add(1),
			ParentID: f.id,
			Name:     f.agg[i].name,
			Session:  c.session,
			Index:    c.index,
			StartUNS: f.start.UnixNano(),
			DurNS:    f.agg[i].ns,
			Agg:      true,
		})
	}
	//mpclint:ignore hotpath-alloc bounded by maxSpanDepth*(maxAggPhases+2), the capacity StartRoot reserves; steady state pinned by TestActiveTraceSteadyStateZeroAlloc
	c.buf = append(c.buf, SpanRecord{
		TraceID:  c.traceID,
		SpanID:   f.id,
		ParentID: f.parent,
		Name:     f.name,
		Session:  c.session,
		Index:    c.index,
		StartUNS: f.start.UnixNano(),
		DurNS:    dur.Nanoseconds(),
	})
	*f = frame{}
	c.depth--
	if c.depth == 0 {
		c.t.publish(c.buf)
		c.buf = c.buf[:0]
	}
}
