package telemetry

import (
	"testing"
	"time"
)

// TestRecordEmitsChildSpan covers Context.Record — the duration-taking
// sibling of RecordSince the batch wait/eval decomposition uses: it
// must attach a child of the active frame with exactly the start and
// duration it was handed, reading no clock of its own.
func TestRecordEmitsChildSpan(t *testing.T) {
	tr := NewTracer(64, 1)
	c := tr.NewContext("s1")

	root := c.StartRoot(SpanDecide, 3)
	start := time.Unix(100, 500)
	c.Record(SpanBatchWait, start, 42*time.Microsecond)
	c.Record(SpanBatchEval, start.Add(42*time.Microsecond), 7*time.Millisecond)
	root.End()

	recs := tr.Snapshot(nil)
	waits := findByName(recs, SpanBatchWait)
	if len(waits) != 1 {
		t.Fatalf("got %d %s spans, want 1", len(waits), SpanBatchWait)
	}
	w := waits[0]
	if w.StartUNS != start.UnixNano() || w.DurNS != 42*time.Microsecond.Nanoseconds() {
		t.Fatalf("wait span carries (%d, %d), want the handed-in (%d, %d)",
			w.StartUNS, w.DurNS, start.UnixNano(), 42*time.Microsecond.Nanoseconds())
	}
	roots := findByName(recs, SpanDecide)
	if len(roots) != 1 || w.ParentID != roots[0].SpanID {
		t.Fatalf("wait span parent %d, want root %d", w.ParentID, roots[0].SpanID)
	}
	evals := findByName(recs, SpanBatchEval)
	if len(evals) != 1 || evals[0].DurNS != (7*time.Millisecond).Nanoseconds() {
		t.Fatalf("eval span wrong: %+v", evals)
	}
}

// TestRecordInactiveNoOps: a nil context, an unsampled trace, and a
// zero start (the StartPhase sentinel for "not tracing") must all
// record nothing — the decision path calls Record unconditionally.
func TestRecordInactiveNoOps(t *testing.T) {
	var nilC *Context
	nilC.Record(SpanBatchWait, time.Now(), time.Microsecond)

	tr := NewTracer(8, 1)
	c := tr.NewContext("s")
	c.Record(SpanBatchWait, time.Now(), time.Microsecond) // no active root
	root := c.StartRoot(SpanDecide, 0)
	c.Record(SpanBatchWait, time.Time{}, time.Microsecond) // zero start
	root.End()
	recs := tr.Snapshot(nil)
	if got := len(findByName(recs, SpanBatchWait)); got != 0 {
		t.Fatalf("inactive Record emitted %d spans, want 0", got)
	}

	off := NewTracer(8, 0).NewContext("s")
	r := off.StartRoot(SpanDecide, 0)
	off.Record(SpanBatchWait, time.Now(), time.Microsecond)
	r.End()
}
