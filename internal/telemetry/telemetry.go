// Package telemetry is the deep-observability layer of the serving
// stack: request-scoped span tracing over the decide path, a
// model-quality scoreboard tracking prediction error per model
// generation, and cumulative energy/decision accounting.
//
// Everything in this package is read-only with respect to the control
// path: spans, scoreboard cells and accounting rows are derived from
// decisions and observations but never feed back into them, so a traced
// replay stays byte-identical to an untraced one (pinned by the golden
// parity tests). This is also why telemetry is the one place on the
// decision path allowed to read the wall clock — the mpclint
// determinism-taint check bans reaching time.Now from internal/{core,
// rf,policy,predict,sim} but sanctions chains that stop here, and
// those packages only ever time anything through the nil-safe Context
// API in this package.
//
// # The three surfaces
//
//   - Tracer/Context/Span (span.go): zero-alloc-when-disabled span
//     tracing with 1-in-N root sampling, a bounded ring of finished
//     spans, and JSONL export (jsonl.go). One Context per session,
//     owned by that session's single goroutine.
//   - Scoreboard (scoreboard.go): per-(generation, app) rolling windows
//     of signed relative prediction error and MAPE for time and power,
//     with drift detection against a training-time MAPE baseline.
//   - Accounting (accounting.go): cumulative predicted-vs-measured
//     energy per session and per configuration bucket, fallback and
//     horizon tallies, queue-wait windows with per-session p99.
//
// A Hub bundles the three so the serve layer and the commands thread
// one pointer instead of three.
package telemetry

import "mpcdvfs/internal/metrics"

// Traceable is implemented by policies that carry a trace context into
// their decision internals (search spans, predictor phase timing). The
// engine and the serve layer thread their context into such policies
// the same way obs.Instrumentable threads observers. A nil context
// disables tracing for the policy.
type Traceable interface {
	SetTraceContext(*Context)
}

// Default sizing of a Hub.
const (
	DefaultRingSize    = 4096
	DefaultWindow      = 64
	DefaultDriftFactor = 2.0
)

// Options sizes a Hub.
type Options struct {
	// RingSize bounds the finished-span ring (<= 0 uses
	// DefaultRingSize).
	RingSize int
	// Sample enables tracing of one in every Sample decide requests
	// per tracer (1 = every request). 0 disables tracing entirely: no
	// trace is ever sampled and the per-decision cost is one atomic
	// load plus a branch.
	Sample int
	// Window is the scoreboard's rolling error window per
	// (generation, app) cell (<= 0 uses DefaultWindow).
	Window int
	// DriftFactor flags a cell as drifted when its rolling MAPE
	// exceeds DriftFactor × the generation's baseline MAPE
	// (<= 0 uses DefaultDriftFactor).
	DriftFactor float64
	// BaselineTimeMAPE/BaselinePowerMAPE, when positive, are the
	// fallback training-time MAPE fractions used for drift detection
	// on generations with no explicit Scoreboard.SetBaseline call.
	BaselineTimeMAPE  float64
	BaselinePowerMAPE float64
}

// Hub bundles the telemetry surfaces one serving process uses.
type Hub struct {
	Tracer     *Tracer
	Scoreboard *Scoreboard
	Accounting *Accounting
}

// NewHub builds a Hub from o, applying defaults.
func NewHub(o Options) *Hub {
	if o.RingSize <= 0 {
		o.RingSize = DefaultRingSize
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.DriftFactor <= 0 {
		o.DriftFactor = DefaultDriftFactor
	}
	sb := NewScoreboard(o.Window, o.DriftFactor)
	if o.BaselineTimeMAPE > 0 || o.BaselinePowerMAPE > 0 {
		sb.SetDefaultBaseline(o.BaselineTimeMAPE, o.BaselinePowerMAPE)
	}
	return &Hub{
		Tracer:     NewTracer(o.RingSize, o.Sample),
		Scoreboard: sb,
		Accounting: NewAccounting(),
	}
}

// Instrument mirrors all three surfaces into reg. Call once, before
// traffic.
func (h *Hub) Instrument(reg *metrics.Registry) {
	if h == nil {
		return
	}
	h.Tracer.Instrument(reg)
	h.Scoreboard.Instrument(reg)
	h.Accounting.Instrument(reg)
}
