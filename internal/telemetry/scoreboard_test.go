package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"mpcdvfs/internal/metrics"
)

// exposition renders reg's text format, failing the test on error.
func exposition(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// hasLine reports whether text contains line as a full exposition line.
func hasLine(text, line string) bool {
	for _, l := range strings.Split(text, "\n") {
		if l == line {
			return true
		}
	}
	return false
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestScoreboardWindows(t *testing.T) {
	b := NewScoreboard(4, 2)
	// Predictions 10% high on time, 20% low on power.
	for i := 0; i < 10; i++ {
		b.Observe(1, "app", 1.1, 1.0, 8.0, 10.0)
	}
	cells := b.Snapshot()
	if len(cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Gen != 1 || c.App != "app" || c.Observations != 10 || c.WindowFill != 4 {
		t.Fatalf("cell header wrong: %+v", c)
	}
	if !almostEq(c.TimeMAPE, 0.1) || !almostEq(c.TimeBias, 0.1) {
		t.Fatalf("time MAPE/bias = %v/%v, want 0.1/0.1", c.TimeMAPE, c.TimeBias)
	}
	if !almostEq(c.PowerMAPE, 0.2) || !almostEq(c.PowerBias, -0.2) {
		t.Fatalf("power MAPE/bias = %v/%v, want 0.2/-0.2", c.PowerMAPE, c.PowerBias)
	}
}

// TestScoreboardWindowEviction checks the incremental sums survive
// wrap-around: after the window slides past early outliers, MAPE
// reflects only the retained samples.
func TestScoreboardWindowEviction(t *testing.T) {
	b := NewScoreboard(4, 2)
	b.Observe(1, "a", 2.0, 1.0, 10, 10) // +100% time error, evicted later
	for i := 0; i < 4; i++ {
		b.Observe(1, "a", 1.05, 1.0, 10, 10)
	}
	c := b.Snapshot()[0]
	if !almostEq(c.TimeMAPE, 0.05) {
		t.Fatalf("after eviction TimeMAPE = %v, want 0.05", c.TimeMAPE)
	}
}

func TestScoreboardDrift(t *testing.T) {
	b := NewScoreboard(16, 2)
	b.SetBaseline(1, 0.10, 0.10)
	// Healthy: 12% error < 2×10% baseline.
	for i := 0; i < minDriftSamples; i++ {
		b.Observe(1, "good", 1.12, 1.0, 10, 10)
	}
	// Degraded: 50% error > 2×10% baseline.
	for i := 0; i < minDriftSamples; i++ {
		b.Observe(1, "bad", 1.5, 1.0, 10, 10)
	}
	// Degraded but too few samples to flag.
	for i := 0; i < minDriftSamples-1; i++ {
		b.Observe(1, "young", 1.5, 1.0, 10, 10)
	}
	// Degraded on a generation with no baseline: never flagged.
	for i := 0; i < minDriftSamples; i++ {
		b.Observe(2, "bad", 1.5, 1.0, 10, 10)
	}
	want := map[string]bool{"1/good": false, "1/bad": true, "1/young": false, "2/bad": false}
	for _, c := range b.Snapshot() {
		key := map[uint64]string{1: "1/", 2: "2/"}[c.Gen] + c.App
		if c.Drifted != want[key] {
			t.Errorf("cell %s drifted = %v, want %v (MAPE %v)", key, c.Drifted, want[key], c.TimeMAPE)
		}
	}

	// A default baseline turns drift detection on for generation 2.
	b.SetDefaultBaseline(0.10, 0.10)
	for _, c := range b.Snapshot() {
		if c.Gen == 2 && c.App == "bad" && !c.Drifted {
			t.Error("gen-2 cell not drifted under the default baseline")
		}
	}
}

func TestScoreboardSkipsNonPositiveMeasurements(t *testing.T) {
	b := NewScoreboard(8, 2)
	b.Observe(1, "a", 1, 0, 10, 10)
	b.Observe(1, "a", 1, 1, 10, 0)
	if cells := b.Snapshot(); len(cells) != 0 {
		t.Fatalf("non-positive measurements scored: %+v", cells)
	}
}

func TestScoreboardMetricsMirror(t *testing.T) {
	reg := metrics.New()
	b := NewScoreboard(8, 2)
	b.SetBaseline(3, 0.01, 0.01)
	b.Instrument(reg)
	for i := 0; i < minDriftSamples; i++ {
		b.Observe(3, "x", 1.5, 1.0, 10, 10)
	}
	text := exposition(t, reg)
	for _, want := range []string{
		`mpcdvfs_model_observations_total{gen="3",app="x"} 8`,
		`mpcdvfs_model_drift{gen="3",app="x"} 1`,
		`mpcdvfs_model_time_mape{gen="3",app="x"} 0.5`,
	} {
		if !hasLine(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestScoreboardConcurrent drives the scoreboard from 4 goroutines —
// the shape of 4 live serving sessions — with snapshots interleaved;
// the CI race job runs this under -race.
func TestScoreboardConcurrent(t *testing.T) {
	b := NewScoreboard(32, 2)
	b.Instrument(metrics.New())
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app := string(rune('a' + g))
			for i := 0; i < perG; i++ {
				b.Observe(uint64(1+g%2), app, 1.1, 1.0, 9, 10)
				if i%100 == 0 {
					b.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	total := uint64(0)
	for _, c := range b.Snapshot() {
		total += c.Observations
	}
	if total != 4*perG {
		t.Fatalf("lost observations: %d, want %d", total, 4*perG)
	}
}

func BenchmarkTelemetryScoreboardObserve(b *testing.B) {
	sb := NewScoreboard(64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Observe(1, "app", 1.05, 1.0, 9.5, 10.0)
	}
}

// TestScoreboardDriftHookRisingEdge: the hook fires exactly once when a
// cell crosses into drift, not on every drifted Observe, and re-fires
// only after the cell recovers below the threshold first.
func TestScoreboardDriftHookRisingEdge(t *testing.T) {
	b := NewScoreboard(minDriftSamples, 2)
	b.SetBaseline(1, 0.10, 0.10)
	type fire struct {
		gen uint64
		app string
	}
	var fires []fire
	b.SetDriftHook(func(gen uint64, app string) { fires = append(fires, fire{gen, app}) })

	// Healthy observations: no fire.
	for i := 0; i < 2*minDriftSamples; i++ {
		b.Observe(1, "a", 1.05, 1.0, 10, 10)
	}
	if len(fires) != 0 {
		t.Fatalf("hook fired %d times on healthy traffic", len(fires))
	}
	// Degrade until the window tips over the threshold: exactly one fire
	// even though many subsequent Observes are also drifted.
	for i := 0; i < 3*minDriftSamples; i++ {
		b.Observe(1, "a", 1.5, 1.0, 10, 10)
	}
	if len(fires) != 1 || fires[0] != (fire{1, "a"}) {
		t.Fatalf("rising edge fired %v, want exactly one (1, a)", fires)
	}
	// Recover: the full window refills with healthy errors, then degrade
	// again — a second rising edge.
	for i := 0; i < 2*minDriftSamples; i++ {
		b.Observe(1, "a", 1.05, 1.0, 10, 10)
	}
	if len(fires) != 1 {
		t.Fatalf("recovery fired the hook: %v", fires)
	}
	for i := 0; i < 3*minDriftSamples; i++ {
		b.Observe(1, "a", 1.5, 1.0, 10, 10)
	}
	if len(fires) != 2 {
		t.Fatalf("re-degradation after recovery fired %d times, want 2", len(fires))
	}
	// Independent cells edge independently.
	for i := 0; i < 3*minDriftSamples; i++ {
		b.Observe(1, "b", 1.5, 1.0, 10, 10)
	}
	if len(fires) != 3 || fires[2] != (fire{1, "b"}) {
		t.Fatalf("second cell's edge: %v", fires)
	}
	// Clearing the hook silences future edges.
	b.SetDriftHook(nil)
	for i := 0; i < 2*minDriftSamples; i++ {
		b.Observe(1, "c", 1.5, 1.0, 10, 10)
	}
	if len(fires) != 3 {
		t.Fatalf("cleared hook still fired: %v", fires)
	}
}
