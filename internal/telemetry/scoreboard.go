package telemetry

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"mpcdvfs/internal/metrics"
)

// minDriftSamples is the fewest window samples before a cell may be
// flagged as drifted: a couple of outliers at session start must not
// trip the gate a future continuous trainer promotes against.
const minDriftSamples = 8

// Baseline is a model generation's training-time error level, the
// reference drift detection compares rolling MAPE against. Values are
// fractions (0.08 = 8%).
type Baseline struct {
	TimeMAPE  float64 `json:"time_mape"`
	PowerMAPE float64 `json:"power_mape"`
}

// errWindow is a rolling window of signed relative errors with
// incrementally maintained sums, so Observe is O(1) and MAPE/bias are
// reads.
type errWindow struct {
	vals   []float64
	pos, n int
	sum    float64 // Σ signed error over the window
	sumAbs float64 // Σ |error| over the window
}

func (w *errWindow) push(v float64) {
	if w.n == len(w.vals) {
		old := w.vals[w.pos]
		w.sum -= old
		if old < 0 {
			w.sumAbs += old
		} else {
			w.sumAbs -= old
		}
	} else {
		w.n++
	}
	w.vals[w.pos] = v
	w.pos++
	if w.pos == len(w.vals) {
		w.pos = 0
	}
	w.sum += v
	if v < 0 {
		w.sumAbs -= v
	} else {
		w.sumAbs += v
	}
}

// mape returns the window's mean absolute relative error (fraction).
func (w *errWindow) mape() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sumAbs / float64(w.n)
}

// bias returns the window's mean signed relative error (fraction;
// positive = over-prediction).
func (w *errWindow) bias() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

type cellKey struct {
	gen uint64
	app string
}

type cell struct {
	count       uint64
	time, power errWindow
	wasDrifted  bool // last drift evaluation, for rising-edge hooks
}

// Scoreboard tracks per-(model generation, app) prediction quality
// from served Observe ground truth. Safe for concurrent use from many
// session goroutines.
type Scoreboard struct {
	window int
	factor float64

	mu       sync.Mutex
	cells    map[cellKey]*cell
	order    []cellKey
	base     map[uint64]Baseline
	defBase  Baseline
	haveBase bool
	onDrift  func(gen uint64, app string)

	instr atomic.Pointer[scoreInstr]
}

type scoreInstr struct {
	observations *metrics.CounterVec
	timeMAPE     *metrics.GaugeVec
	powerMAPE    *metrics.GaugeVec
	timeBias     *metrics.GaugeVec
	drift        *metrics.GaugeVec
}

// NewScoreboard returns a scoreboard with the given rolling window per
// cell and drift factor (rolling MAPE > factor × baseline MAPE flags
// drift).
func NewScoreboard(window int, driftFactor float64) *Scoreboard {
	if window <= 0 {
		window = DefaultWindow
	}
	if driftFactor <= 0 {
		driftFactor = DefaultDriftFactor
	}
	return &Scoreboard{
		window: window,
		factor: driftFactor,
		cells:  map[cellKey]*cell{},
		base:   map[uint64]Baseline{},
	}
}

// SetBaseline records generation gen's training-time MAPE levels
// (fractions). Drift detection for gen's cells compares against them.
func (b *Scoreboard) SetBaseline(gen uint64, timeMAPE, powerMAPE float64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.base[gen] = Baseline{TimeMAPE: timeMAPE, PowerMAPE: powerMAPE}
}

// SetDefaultBaseline sets the baseline used for generations without an
// explicit SetBaseline call.
func (b *Scoreboard) SetDefaultBaseline(timeMAPE, powerMAPE float64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.defBase = Baseline{TimeMAPE: timeMAPE, PowerMAPE: powerMAPE}
	b.haveBase = true
}

// SetDriftHook registers fn to be called on a cell's drift rising edge:
// the Observe that flips a (generation, app) cell from healthy to
// drifted, and only that one — a cell that stays drifted does not
// re-fire until it recovers first. The hook runs outside the scoreboard
// lock, on the observing session's goroutine, so it must be cheap and
// non-blocking (the continuous trainer's NotifyDrift is: it sets a flag
// and nudges a channel). Call before traffic; a nil fn clears the hook.
func (b *Scoreboard) SetDriftHook(fn func(gen uint64, app string)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onDrift = fn
}

// Instrument mirrors the scoreboard into reg as the mpcdvfs_model_*
// families, labelled by generation and app.
func (b *Scoreboard) Instrument(reg *metrics.Registry) {
	if b == nil {
		return
	}
	in := &scoreInstr{
		observations: reg.Counter("mpcdvfs_model_observations_total",
			"Ground-truth observations scored against a model generation.", "gen", "app"),
		timeMAPE: reg.Gauge("mpcdvfs_model_time_mape",
			"Rolling mean absolute relative time-prediction error (fraction).", "gen", "app"),
		powerMAPE: reg.Gauge("mpcdvfs_model_power_mape",
			"Rolling mean absolute relative power-prediction error (fraction).", "gen", "app"),
		timeBias: reg.Gauge("mpcdvfs_model_time_bias",
			"Rolling mean signed relative time-prediction error (positive = over-prediction).", "gen", "app"),
		drift: reg.Gauge("mpcdvfs_model_drift",
			"1 when the cell's rolling MAPE exceeds the drift factor times its generation's baseline.", "gen", "app"),
	}
	b.instr.Store(in)
}

// Observe scores one kernel's predicted-vs-measured outcome against
// generation gen for app. Non-positive measurements are skipped (no
// meaningful relative error exists).
func (b *Scoreboard) Observe(gen uint64, app string, predTimeMS, measTimeMS, predPowerW, measPowerW float64) {
	if b == nil || measTimeMS <= 0 || measPowerW <= 0 {
		return
	}
	te := (predTimeMS - measTimeMS) / measTimeMS
	pe := (predPowerW - measPowerW) / measPowerW

	key := cellKey{gen: gen, app: app}
	b.mu.Lock()
	c, ok := b.cells[key]
	if !ok {
		c = &cell{
			time:  errWindow{vals: make([]float64, b.window)},
			power: errWindow{vals: make([]float64, b.window)},
		}
		b.cells[key] = c
		b.order = append(b.order, key)
	}
	c.count++
	c.time.push(te)
	c.power.push(pe)
	tm, pm, tb := c.time.mape(), c.power.mape(), c.time.bias()
	drifted := b.driftedLocked(key.gen, c)
	rising := drifted && !c.wasDrifted
	c.wasDrifted = drifted
	hook := b.onDrift
	b.mu.Unlock()

	if rising && hook != nil {
		hook(gen, app)
	}
	if in := b.instr.Load(); in != nil {
		g := strconv.FormatUint(gen, 10)
		in.observations.With(g, app).Inc()
		in.timeMAPE.With(g, app).Set(tm)
		in.powerMAPE.With(g, app).Set(pm)
		in.timeBias.With(g, app).Set(tb)
		v := 0.0
		if drifted {
			v = 1
		}
		in.drift.With(g, app).Set(v)
	}
}

// driftedLocked evaluates the drift rule for one cell. Caller holds mu.
func (b *Scoreboard) driftedLocked(gen uint64, c *cell) bool {
	base, ok := b.base[gen]
	if !ok {
		if !b.haveBase {
			return false
		}
		base = b.defBase
	}
	if c.time.n < minDriftSamples {
		return false
	}
	if base.TimeMAPE > 0 && c.time.mape() > b.factor*base.TimeMAPE {
		return true
	}
	if base.PowerMAPE > 0 && c.power.mape() > b.factor*base.PowerMAPE {
		return true
	}
	return false
}

// CellSnapshot is one (generation, app) row of the scoreboard.
type CellSnapshot struct {
	Gen          uint64  `json:"gen"`
	App          string  `json:"app"`
	Observations uint64  `json:"observations"`
	WindowFill   int     `json:"window_fill"` // samples currently in the rolling window
	TimeMAPE     float64 `json:"time_mape"`   // fraction
	PowerMAPE    float64 `json:"power_mape"`
	TimeBias     float64 `json:"time_bias"` // signed fraction
	PowerBias    float64 `json:"power_bias"`
	Drifted      bool    `json:"drifted"`
	// Baseline is the training-time reference drift compares against
	// (zero when none is configured for the generation).
	Baseline Baseline `json:"baseline"`
}

// Snapshot returns every cell, sorted by generation then app.
func (b *Scoreboard) Snapshot() []CellSnapshot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]CellSnapshot, 0, len(b.order))
	for _, key := range b.order {
		c := b.cells[key]
		base, ok := b.base[key.gen]
		if !ok && b.haveBase {
			base = b.defBase
		}
		out = append(out, CellSnapshot{
			Gen:          key.gen,
			App:          key.app,
			Observations: c.count,
			WindowFill:   c.time.n,
			TimeMAPE:     c.time.mape(),
			PowerMAPE:    c.power.mape(),
			TimeBias:     c.time.bias(),
			PowerBias:    c.power.bias(),
			Drifted:      b.driftedLocked(key.gen, c),
			Baseline:     base,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gen != out[j].Gen {
			return out[i].Gen < out[j].Gen
		}
		return out[i].App < out[j].App
	})
	return out
}
