package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestAccountingLedger(t *testing.T) {
	a := NewAccounting()
	a.RecordDecision("s1", "", 4, 0.5)
	a.RecordDecision("s1", "cold_start", 1, 2.0)
	a.RecordDecision("s2", "", 8, 0.1)
	a.RecordObservation("s1", "g3/m1/c2", 10, 12)
	a.RecordObservation("s1", "g3/m1/c2", 5, 4)
	a.RecordObservation("s2", "g0/m0/c0", 7, 7)

	snap := a.Snapshot()
	if len(snap.Sessions) != 2 {
		t.Fatalf("got %d sessions, want 2", len(snap.Sessions))
	}
	s1 := snap.Sessions[0]
	if s1.SessionID != "s1" || s1.Decisions != 2 || s1.Observations != 2 || s1.Fallbacks != 1 {
		t.Fatalf("s1 row wrong: %+v", s1)
	}
	if s1.PredictedEnergyMJ != 15 || s1.MeasuredEnergyMJ != 16 {
		t.Fatalf("s1 energy = %v/%v, want 15/16", s1.PredictedEnergyMJ, s1.MeasuredEnergyMJ)
	}
	if len(snap.Configs) != 2 || snap.Configs[1].Config != "g3/m1/c2" || snap.Configs[1].PredictedEnergyMJ != 15 {
		t.Fatalf("config buckets wrong: %+v", snap.Configs)
	}
	if snap.Fallbacks["cold_start"] != 1 {
		t.Fatalf("fallback tally wrong: %+v", snap.Fallbacks)
	}
	if snap.Horizons[4] != 1 || snap.Horizons[1] != 1 || snap.Horizons[8] != 1 {
		t.Fatalf("horizon tally wrong: %+v", snap.Horizons)
	}
}

func TestAccountingQueueWaitP99(t *testing.T) {
	a := NewAccounting()
	for i := 1; i <= 100; i++ {
		a.RecordDecision("s", "", 1, float64(i))
	}
	snap := a.Snapshot()
	p99 := snap.Sessions[0].QueueWaitP99MS
	if p99 < 95 || p99 > 100 {
		t.Fatalf("p99 = %v, want ~99", p99)
	}
}

// TestAccountingSessionEviction checks the per-session map is bounded:
// the oldest row is dropped, but its energy persists in config buckets.
func TestAccountingSessionEviction(t *testing.T) {
	a := NewAccounting()
	for i := 0; i < maxSessionAccounts+10; i++ {
		id := fmt.Sprintf("s%04d", i)
		a.RecordObservation(id, "cfg", 1, 1)
	}
	snap := a.Snapshot()
	if len(snap.Sessions) != maxSessionAccounts {
		t.Fatalf("got %d sessions, want %d", len(snap.Sessions), maxSessionAccounts)
	}
	if snap.Sessions[0].SessionID != "s0010" {
		t.Fatalf("oldest retained session = %s, want s0010", snap.Sessions[0].SessionID)
	}
	if snap.Configs[0].Observations != uint64(maxSessionAccounts+10) {
		t.Fatalf("config bucket lost evicted sessions' energy: %+v", snap.Configs[0])
	}
}

func TestAccountingNilSafe(t *testing.T) {
	var a *Accounting
	a.RecordDecision("s", "x", 1, 1)
	a.RecordObservation("s", "c", 1, 1)
	if snap := a.Snapshot(); snap.Sessions != nil {
		t.Fatal("nil ledger returned sessions")
	}
}

// TestAccountingConcurrent exercises the ledger from 4 goroutines for
// the CI race job.
func TestAccountingConcurrent(t *testing.T) {
	a := NewAccounting()
	const perG = 400
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("sess-%d", g)
			for i := 0; i < perG; i++ {
				a.RecordDecision(id, "", 4, 0.2)
				a.RecordObservation(id, "cfg", 1, 1)
				if i%100 == 0 {
					a.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := a.Snapshot()
	var total uint64
	for _, s := range snap.Sessions {
		total += s.Decisions
	}
	if total != 4*perG {
		t.Fatalf("lost decisions: %d, want %d", total, 4*perG)
	}
}
