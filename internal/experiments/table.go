// Package experiments regenerates every table and figure of the paper's
// evaluation (§II, §VI) from the simulated system: one runner per
// table/figure, all driven from a shared fixture so the Turbo Core
// baselines and the offline-trained Random Forest are computed once.
//
// Runners return typed Tables that cmd/experiments renders as text;
// EXPERIMENTS.md records the paper-reported values next to the measured
// ones.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated figure or table.
type Table struct {
	ID      string   // e.g. "fig8"
	Title   string   // paper caption, abbreviated
	Columns []string // first column is the row label
	Rows    []Row
	Notes   []string // summary lines (averages, paper-reported values)
}

// Row is one line of a Table.
type Row struct {
	Name   string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(name string, values ...float64) {
	t.Rows = append(t.Rows, Row{Name: name, Values: values})
}

// Note appends a formatted summary line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if len(t.Columns) > 0 {
		widths := make([]int, len(t.Columns))
		for i, c := range t.Columns {
			widths[i] = len(c)
		}
		cells := make([][]string, len(t.Rows))
		for r, row := range t.Rows {
			cells[r] = make([]string, len(t.Columns))
			cells[r][0] = row.Name
			if len(row.Name) > widths[0] {
				widths[0] = len(row.Name)
			}
			for i, v := range row.Values {
				if i+1 >= len(t.Columns) {
					break
				}
				s := formatValue(v)
				cells[r][i+1] = s
				if len(s) > widths[i+1] {
					widths[i+1] = len(s)
				}
			}
		}
		for i, c := range t.Columns {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*(len(widths)-1)))
		for _, row := range cells {
			for i, c := range row {
				if i > 0 {
					fmt.Fprint(w, "  ")
				}
				if i == 0 {
					fmt.Fprintf(w, "%-*s", widths[i], c)
				} else {
					fmt.Fprintf(w, "%*s", widths[i], c)
				}
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w)
}

func formatValue(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
