package experiments

import (
	"fmt"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
)

func init() {
	register("tableI", "Software-visible CPU, NB and GPU DVFS states (Table I)", runTableI)
	register("fig2", "Kernel speedup vs (NB state, CUs) with energy-optimal points (Fig. 2)", runFig2)
	register("fig3", "Normalized kernel throughput vs execution order (Fig. 3)", runFig3)
	register("tableII", "Execution patterns of three irregular benchmarks (Table II)", runTableII)
	register("tableIV", "Benchmarks with their execution pattern (Table IV)", runTableIV)
}

func runTableI(*Fixture) (*Table, error) {
	t := &Table{
		ID: "tableI", Title: "DVFS states of the AMD A10-7850K",
		Columns: []string{"state", "voltage(V)", "freq"},
	}
	for p := hw.P1; p <= hw.P7; p++ {
		t.AddRow(p.String(), p.Voltage(), p.FreqGHz())
	}
	for n := hw.NB0; n <= hw.NB3; n++ {
		t.AddRow(n.String(), n.MinVoltage(), n.FreqGHz())
		t.Note("%s memory frequency: %.0f MHz (%.1f GB/s)", n, n.MemFreqMHz(), n.MemBWGBs())
	}
	for g := hw.DPM0; g <= hw.DPM4; g++ {
		t.AddRow(g.String(), g.Voltage(), g.FreqMHz())
	}
	t.Note("NB voltages are the shared-rail floors (not published in Table I)")
	return t, nil
}

// fig2Kernels are the four archetypes of Fig. 2.
func fig2Kernels() []kernel.Kernel {
	return []kernel.Kernel{
		kernel.NewComputeBound("MaxFlops", 1),
		kernel.NewMemoryBound("readGlobalMemoryCoalesced", 1),
		kernel.NewPeak("writeCandidates", 1),
		kernel.NewUnscalable("astar", 1),
	}
}

func runFig2(f *Fixture) (*Table, error) {
	t := &Table{
		ID: "fig2", Title: "Speedup over [NB3, 2 CUs] at P5/DPM4; energy-optimal marks",
		Columns: []string{"kernel/NB", "2 CUs", "4 CUs", "6 CUs", "8 CUs"},
	}
	for _, k := range fig2Kernels() {
		base := k.TimeMS(hw.Config{CPU: hw.P5, NB: hw.NB3, GPU: hw.DPM4, CUs: 2})
		for nb := hw.NB3; nb >= hw.NB0; nb-- {
			var vals []float64
			for cu := int8(2); cu <= 8; cu += 2 {
				c := hw.Config{CPU: hw.P5, NB: nb, GPU: hw.DPM4, CUs: cu}
				vals = append(vals, base/k.TimeMS(c))
			}
			t.AddRow(fmt.Sprintf("%s/%s", k.Name(), nb), vals...)
		}
		best, m := k.OptimalConfig(f.Space, 0)
		t.Note("%s (%s): energy-optimal at %v (%.2f ms, %.1f W)",
			k.Name(), k.P.Class, best, m.TimeMS, m.TotalW())
	}
	t.Note("paper: compute-bound optimal at low NB/many CUs; memory-bound saturates from NB2; peak best below 8 CUs; unscalable at lowest config")
	return t, nil
}

func runFig3(f *Fixture) (*Table, error) {
	t := &Table{
		ID: "fig3", Title: "Kernel throughput normalized to overall app throughput (Turbo Core configs)",
		Columns: []string{"app", "k01", "k02", "k03", "k04", "k05", "k06", "k07", "k08", "k09", "k10",
			"k11", "k12", "k13", "k14", "k15", "k16", "k17", "k18", "k19", "k20",
			"k21", "k22", "k23", "k24", "k25", "k26", "k27", "k28", "k29", "k30"},
	}
	for _, name := range []string{"Spmv", "kmeans", "hybridsort"} {
		app := f.App(name)
		base, target := f.Baseline(app)
		_ = base
		var vals []float64
		for _, k := range app.Kernels {
			tp := k.Throughput(hw.MaxPerf())
			vals = append(vals, tp/target.Throughput())
		}
		t.AddRow(name, vals...)
	}
	t.Note("paper: Spmv transitions high-to-low, kmeans low-to-high, hybridsort varies per kernel and input")
	return t, nil
}

func runTableII(f *Fixture) (*Table, error) {
	t := &Table{
		ID: "tableII", Title: "Execution pattern of three irregular benchmarks",
		Columns: []string{"benchmark"},
	}
	for _, name := range []string{"Spmv", "kmeans", "hybridsort"} {
		app := f.App(name)
		t.AddRow(fmt.Sprintf("%-12s %s", name, app.Pattern))
	}
	t.Note("paper: Spmv=A10B10C10, kmeans=AB20, hybridsort=ABCDEF1..F9G")
	return t, nil
}

func runTableIV(f *Fixture) (*Table, error) {
	t := &Table{
		ID: "tableIV", Title: "Benchmarks with their execution pattern",
		Columns: []string{"benchmark", "kernels"},
	}
	for i := range f.Apps {
		app := &f.Apps[i]
		t.AddRow(fmt.Sprintf("%-14s %-12s %-40s %s", app.Name, app.Suite, app.Category, app.Pattern),
			float64(app.Len()))
	}
	return t, nil
}
