package experiments

import (
	"fmt"
	"sync"

	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/policy"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/stats"
	"mpcdvfs/internal/workload"
)

func init() {
	register("fig4", "Limit study: PPK vs Theoretically Optimal, perfect knowledge (Fig. 4)", runFig4)
	register("fig8", "PPK and MPC energy savings / speedup over Turbo Core (Fig. 8)", runFig8)
	register("fig9", "MPC energy savings and speedup over PPK (Fig. 9)", runFig9)
	register("fig10", "GPU energy savings over Turbo Core (Fig. 10)", runFig10)
	register("fig11", "Amortization of initial losses over re-executions (Fig. 11)", runFig11)
	register("fig12", "MPC vs Theoretically Optimal, perfect prediction (Fig. 12)", runFig12)
	register("mape", "Random Forest prediction accuracy (§VI-D)", runMAPE)
	register("fig13", "Ramification of prediction inaccuracy (Fig. 13)", runFig13)
}

// steadyRun executes a fresh MPC policy through its profiling run plus
// `steady` MPC runs and returns all results.
func steadyRun(eng *sim.Engine, app *workload.App, target sim.Target, m *policy.MPC, steady int) ([]*sim.Result, error) {
	return eng.RunRepeated(app, m, target, steady+1)
}

// runFig4 reproduces the §II-E limit study: both schemes get perfect
// knowledge (oracle) and no overheads; TO additionally knows the future.
func runFig4(f *Fixture) (*Table, error) {
	t := &Table{
		ID: "fig4", Title: "Energy savings (%) and speedup over Turbo Core, perfect knowledge",
		Columns: []string{"benchmark", "PPK save%", "TO save%", "PPK speedup", "TO speedup"},
	}
	var ps, ts, psp, tsp []float64
	for i := range f.Apps {
		app := &f.Apps[i]
		base, target := f.Baseline(app)
		oracle := f.Oracle(app)

		ppk := policy.NewPPK(oracle, f.Space)
		pres, err := f.Free.Run(app, ppk, target, true)
		if err != nil {
			return nil, err
		}
		to := policy.NewTheoreticallyOptimal(app, f.Space)
		tres, err := f.Free.Run(app, to, target, true)
		if err != nil {
			return nil, err
		}
		pc := sim.Compare(pres, base)
		tc := sim.Compare(tres, base)
		t.AddRow(app.Name, pc.EnergySavingsPct, tc.EnergySavingsPct, pc.Speedup, tc.Speedup)
		ps = append(ps, pc.EnergySavingsPct)
		ts = append(ts, tc.EnergySavingsPct)
		psp = append(psp, pc.Speedup)
		tsp = append(tsp, tc.Speedup)
	}
	t.Note("mean: PPK %.1f%% / %.3fx, TO %.1f%% / %.3fx",
		stats.Mean(ps), stats.GeoMean(psp), stats.Mean(ts), stats.GeoMean(tsp))
	t.Note("paper: PPK matches TO on regular apps; on irregular apps PPK loses up to 48%% energy and 46%% performance vs TO")
	return t, nil
}

// fig8Data computes the Fig. 8 scenario: PPK and steady-state MPC with
// the Random Forest predictor, overheads included. Shared by Figs. 8-10.
type fig8Entry struct {
	app  *workload.App
	base *sim.Result
	ppk  *sim.Result
	mpc  *sim.Result
	m    *policy.MPC
}

func fig8Data(f *Fixture) ([]fig8Entry, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	var out []fig8Entry
	for i := range f.Apps {
		app := &f.Apps[i]
		base, target := f.Baseline(app)

		ppk := policy.NewPPK(rf, f.Space)
		// PPK is stateless across runs; one run is its steady state.
		pres, err := f.Engine.Run(app, ppk, target, true)
		if err != nil {
			return nil, err
		}
		m := policy.NewMPC(rf, f.Space)
		rs, err := steadyRun(f.Engine, app, target, m, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, fig8Entry{app: app, base: base, ppk: pres, mpc: rs[1], m: m})
	}
	return out, nil
}

var fig8Cache struct {
	once    sync.Once
	entries []fig8Entry
	err     error
}

func fig8Cached(f *Fixture) ([]fig8Entry, error) {
	if f == Shared() {
		fig8Cache.once.Do(func() {
			fig8Cache.entries, fig8Cache.err = fig8Data(f)
		})
		return fig8Cache.entries, fig8Cache.err
	}
	return fig8Data(f)
}

func runFig8(f *Fixture) (*Table, error) {
	entries, err := fig8Cached(f)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "fig8", Title: "PPK and MPC vs Turbo Core (RF predictor, overheads included)",
		Columns: []string{"benchmark", "PPK save%", "MPC save%", "PPK speedup", "MPC speedup"},
	}
	var ms, msp, pspd []float64
	for _, e := range entries {
		pc := sim.Compare(e.ppk, e.base)
		mc := sim.Compare(e.mpc, e.base)
		t.AddRow(e.app.Name, pc.EnergySavingsPct, mc.EnergySavingsPct, pc.Speedup, mc.Speedup)
		ms = append(ms, mc.EnergySavingsPct)
		msp = append(msp, mc.Speedup)
		pspd = append(pspd, pc.Speedup)
	}
	t.Note("mean MPC: %.1f%% energy savings, %.3fx speedup (perf loss %.1f%%)",
		stats.Mean(ms), stats.GeoMean(msp), 100*(1-stats.GeoMean(msp)))
	t.Note("paper: MPC saves 24.8%% energy with 1.8%% performance loss vs Turbo Core")
	return t, nil
}

func runFig9(f *Fixture) (*Table, error) {
	entries, err := fig8Cached(f)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "fig9", Title: "MPC vs PPK (RF predictor, overheads included)",
		Columns: []string{"benchmark", "energy save% over PPK", "speedup over PPK"},
	}
	var es, sp []float64
	for _, e := range entries {
		save := 100 * (1 - e.mpc.TotalEnergyMJ()/e.ppk.TotalEnergyMJ())
		spd := e.ppk.TotalTimeMS() / e.mpc.TotalTimeMS()
		t.AddRow(e.app.Name, save, spd)
		es = append(es, save)
		sp = append(sp, spd)
	}
	t.Note("mean: %.1f%% energy savings, %.3fx speedup over PPK", stats.Mean(es), stats.GeoMean(sp))
	t.Note("paper: MPC outperforms PPK by 9.6%% while reducing energy by 6.6%%")
	return t, nil
}

func runFig10(f *Fixture) (*Table, error) {
	entries, err := fig8Cached(f)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "fig10", Title: "GPU (incl. NB) energy savings over Turbo Core",
		Columns: []string{"benchmark", "PPK GPU save%", "MPC GPU save%"},
	}
	var ms []float64
	for _, e := range entries {
		pc := sim.Compare(e.ppk, e.base)
		mc := sim.Compare(e.mpc, e.base)
		t.AddRow(e.app.Name, pc.GPUEnergySavingsPct, mc.GPUEnergySavingsPct)
		ms = append(ms, mc.GPUEnergySavingsPct)
	}
	t.Note("mean MPC GPU energy savings: %.1f%%", stats.Mean(ms))
	t.Note("paper: ~10%% average, max 51%% for lbm (peak kernels); CPU contributes 75%% of chip-wide savings")
	return t, nil
}

func runFig11(f *Fixture) (*Table, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "fig11", Title: "MPC vs PPK cumulative over re-executions after the initial run",
		Columns: []string{"benchmark", "1 save%", "10 save%", "100 save%", "steady save%",
			"1 spd", "10 spd", "100 spd", "steady spd"},
	}
	reExecs := []int{1, 10, 100}
	var means [][]float64 = make([][]float64, 8)
	for i := range f.Apps {
		app := &f.Apps[i]
		_, target := f.Baseline(app)

		ppk := policy.NewPPK(rf, f.Space)
		pres, err := f.Engine.Run(app, ppk, target, true)
		if err != nil {
			return nil, err
		}
		m := policy.NewMPC(rf, f.Space)
		// Run profiling + 2 steady invocations; steady-state behaviour is
		// stable after the extractor converges, so later runs replay the
		// third run's totals.
		rs, err := steadyRun(f.Engine, app, target, m, 2)
		if err != nil {
			return nil, err
		}
		firstE, firstT := rs[0].TotalEnergyMJ(), rs[0].TotalTimeMS()
		steadyE, steadyT := rs[2].TotalEnergyMJ(), rs[2].TotalTimeMS()
		run2E, run2T := rs[1].TotalEnergyMJ(), rs[1].TotalTimeMS()
		ppkE, ppkT := pres.TotalEnergyMJ(), pres.TotalTimeMS()

		cum := func(r int) (savePct, speedup float64) {
			// MPC: initial PPK profiling run + r re-executions.
			mE := firstE + run2E
			mT := firstT + run2T
			if r > 1 {
				mE += float64(r-1) * steadyE
				mT += float64(r-1) * steadyT
			}
			pE := float64(r+1) * ppkE
			pT := float64(r+1) * ppkT
			return 100 * (1 - mE/pE), pT / mT
		}
		row := make([]float64, 0, 8)
		for _, r := range reExecs {
			s, _ := cum(r)
			row = append(row, s)
		}
		row = append(row, 100*(1-steadyE/ppkE))
		for _, r := range reExecs {
			_, sp := cum(r)
			row = append(row, sp)
		}
		row = append(row, ppkT/steadyT)
		t.AddRow(app.Name, row...)
		for j, v := range row {
			means[j] = append(means[j], v)
		}
	}
	t.Note("mean: save%% {1:%.1f 10:%.1f 100:%.1f steady:%.1f}, speedup {1:%.3f 10:%.3f 100:%.3f steady:%.3f}",
		stats.Mean(means[0]), stats.Mean(means[1]), stats.Mean(means[2]), stats.Mean(means[3]),
		stats.GeoMean(means[4]), stats.GeoMean(means[5]), stats.GeoMean(means[6]), stats.GeoMean(means[7]))
	t.Note("paper: non-negligible gains after one re-execution; most of the full gains after ten")
	return t, nil
}

func runFig12(f *Fixture) (*Table, error) {
	t := &Table{
		ID: "fig12", Title: "MPC (perfect prediction, full horizon, no overhead) vs Theoretically Optimal",
		Columns: []string{"benchmark", "MPC save%", "TO save%", "MPC speedup", "TO speedup"},
	}
	var ms, ts, msp, tsp []float64
	for i := range f.Apps {
		app := &f.Apps[i]
		base, target := f.Baseline(app)
		oracle := f.Oracle(app)

		m := policy.NewMPC(oracle, f.Space, policy.WithFullHorizon())
		rs, err := steadyRun(f.Free, app, target, m, 1)
		if err != nil {
			return nil, err
		}
		to := policy.NewTheoreticallyOptimal(app, f.Space)
		tres, err := f.Free.Run(app, to, target, true)
		if err != nil {
			return nil, err
		}
		mc := sim.Compare(rs[1], base)
		tc := sim.Compare(tres, base)
		t.AddRow(app.Name, mc.EnergySavingsPct, tc.EnergySavingsPct, mc.Speedup, tc.Speedup)
		ms = append(ms, mc.EnergySavingsPct)
		ts = append(ts, tc.EnergySavingsPct)
		msp = append(msp, mc.Speedup)
		tsp = append(tsp, tc.Speedup)
	}
	frac := stats.Mean(ms) / stats.Mean(ts) * 100
	t.Note("MPC achieves %.0f%% of the theoretical energy savings (paper: 92%% of savings, 93%% of perf gain)", frac)
	t.Note("mean: MPC %.1f%%/%.3fx, TO %.1f%%/%.3fx", stats.Mean(ms), stats.GeoMean(msp), stats.Mean(ts), stats.GeoMean(tsp))
	return t, nil
}

func runMAPE(f *Fixture) (*Table, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "mape", Title: "Random Forest prediction MAPE over the 15 benchmarks",
		Columns: []string{"benchmark", "time MAPE %", "power MAPE %"},
	}
	var alltm, allpm []float64
	for i := range f.Apps {
		app := &f.Apps[i]
		// Deduplicate repeated invocations: accuracy is a per-kernel
		// property.
		seen := map[string]bool{}
		var kernels []kernel.Kernel
		for _, k := range app.Kernels {
			key := fmt.Sprintf("%s@%g", k.Name(), k.InputScale)
			if !seen[key] {
				seen[key] = true
				kernels = append(kernels, k)
			}
		}
		tm, pm := predict.MAPE(rf, kernels, f.Space)
		t.AddRow(app.Name, 100*tm, 100*pm)
		alltm = append(alltm, tm)
		allpm = append(allpm, pm)
	}
	t.Note("mean: time %.1f%%, power %.1f%% (paper: 25%% and 12%%)",
		100*stats.Mean(alltm), 100*stats.Mean(allpm))
	return t, nil
}

func runFig13(f *Fixture) (*Table, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "fig13", Title: "Prediction-error ablation (full horizon, no overhead)",
		Columns: []string{"benchmark", "RF save%", "Err15/10 save%", "Err5 save%", "Err0 save%",
			"RF spd", "Err15/10 spd", "Err5 spd", "Err0 spd"},
	}
	sums := make([][]float64, 8)
	for i := range f.Apps {
		app := &f.Apps[i]
		base, target := f.Baseline(app)
		oracle := f.Oracle(app)

		models := []predict.Model{
			rf,
			predict.NewWithError(oracle, 0.15, 0.10, 77),
			predict.NewWithError(oracle, 0.05, 0.05, 78),
			predict.NewWithError(oracle, 0, 0, 79),
		}
		row := make([]float64, 8)
		for mi, model := range models {
			m := policy.NewMPC(model, f.Space, policy.WithFullHorizon())
			rs, err := steadyRun(f.Free, app, target, m, 1)
			if err != nil {
				return nil, err
			}
			c := sim.Compare(rs[1], base)
			row[mi] = c.EnergySavingsPct
			row[4+mi] = c.Speedup
		}
		t.AddRow(app.Name, row...)
		for j, v := range row {
			sums[j] = append(sums[j], v)
		}
	}
	t.Note("mean save%%: RF %.1f, Err15/10 %.1f, Err5 %.1f, Err0 %.1f",
		stats.Mean(sums[0]), stats.Mean(sums[1]), stats.Mean(sums[2]), stats.Mean(sums[3]))
	t.Note("mean speedup: RF %.3f, Err15/10 %.3f, Err5 %.3f, Err0 %.3f",
		stats.GeoMean(sums[4]), stats.GeoMean(sums[5]), stats.GeoMean(sums[6]), stats.GeoMean(sums[7]))
	t.Note("paper: results are not highly sensitive to prediction accuracy (25%% RF vs 27-28%% for better models)")
	return t, nil
}
