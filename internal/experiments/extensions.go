package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"mpcdvfs/internal/core"
	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/policy"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/stats"
	"mpcdvfs/internal/thermal"
	"mpcdvfs/internal/workload"
)

func init() {
	register("overheadhiding", "Hiding MPC overhead under CPU phases (§VI-E extension)", runOverheadHiding)
	register("backtrack", "Greedy+heuristic MPC vs exhaustive backtracking MPC (§IV-A1a cost claim)", runBacktrack)
	register("fullspace", "MPC on the full 560-configuration space (all five DPM states)", runFullSpace)
	register("predictorablation", "Random Forest vs linear regression predictor", runPredictorAblation)
	register("transitionablation", "Sensitivity to DVFS transition stalls", runTransitionAblation)
	register("thermalstress", "Thermally constrained package: throttling vs policy", runThermalStress)
	register("governors", "General-purpose DVFS governors as reference points", runGovernors)
	register("population", "Robustness on 40 random irregular applications", runPopulation)
	register("featureimportance", "Random Forest feature importance", runFeatureImportance)
}

// runOverheadHiding reproduces the paper's §VI-E remark: "GPGPU
// application kernels may be separated by CPU phases with an available
// CPU, which can hide the MPC overheads. As a result, the actual
// overheads will be lower, permitting longer horizon lengths."
func runOverheadHiding(f *Fixture) (*Table, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "overheadhiding", Title: "MPC with back-to-back kernels vs kernels separated by 1 ms CPU phases",
		Columns: []string{"benchmark", "ov% b2b", "ov% hidden", "horizon% b2b", "horizon% hidden"},
	}
	var ovA, ovB, hA, hB []float64
	for i := range f.Apps {
		app := f.Apps[i] // copy: we add CPU phases
		base, target := f.Baseline(&app)

		mBack := policy.NewMPC(rf, f.Space)
		rsBack, err := steadyRun(f.Engine, &app, target, mBack, 1)
		if err != nil {
			return nil, err
		}
		gapped := app.WithUniformCPUGaps(1.0)
		mHid := policy.NewMPC(rf, f.Space)
		rsHid, err := steadyRun(f.Engine, &gapped, target, mHid, 1)
		if err != nil {
			return nil, err
		}
		ovBack := 100 * rsBack[1].OverheadMS() / base.TotalTimeMS()
		ovHid := 100 * rsHid[1].OverheadMS() / base.TotalTimeMS()
		fracBack, _ := mBack.AvgHorizonFrac()
		fracHid, _ := mHid.AvgHorizonFrac()
		t.AddRow(app.Name, ovBack, ovHid, 100*fracBack, 100*fracHid)
		ovA = append(ovA, ovBack)
		ovB = append(ovB, ovHid)
		hA = append(hA, 100*fracBack)
		hB = append(hB, 100*fracHid)
	}
	t.Note("mean overhead: %.2f%% back-to-back vs %.2f%% with CPU phases; mean horizon: %.0f%% vs %.0f%%",
		stats.Mean(ovA), stats.Mean(ovB), stats.Mean(hA), stats.Mean(hB))
	t.Note("paper §VI-E: hiding overheads under CPU phases lowers actual overheads and permits longer horizons")
	return t, nil
}

// runBacktrack quantifies the §IV-A1a complexity claim on a reduced
// space: the greedy+heuristic window optimization approximates
// exhaustive backtracking MPC at a tiny fraction of its search cost
// (the paper quotes 65× on its configuration sizes).
func runBacktrack(f *Fixture) (*Table, error) {
	// A reduced space keeps M^H enumerable: 3 CPU × 2 NB × 2 GPU × 2 CU
	// = 24 configurations, window of 3 -> 13824 combinations.
	space := hw.Space{
		CPUs: []hw.CPUPState{hw.P1, hw.P4, hw.P7},
		NBs:  []hw.NBState{hw.NB0, hw.NB2},
		GPUs: []hw.GPUState{hw.DPM0, hw.DPM4},
		CUs:  []int8{2, 8},
	}
	t := &Table{
		ID: "backtrack", Title: "One MPC step (window of 3) on a 24-config space: greedy vs backtracking",
		Columns: []string{"benchmark", "greedy evals", "bt combos", "cost ratio", "energy gap %"},
	}
	var ratios, gaps []float64
	for _, name := range []string{"XSBench", "Spmv", "hybridsort", "lulesh"} {
		app := f.App(name)
		oracle := f.Oracle(app)
		opt := core.NewOptimizer(oracle, space)

		// Target throughput over the reduced space's fastest config.
		fast := space.Clamp(hw.MaxPerf())
		sumI, sumT := 0.0, 0.0
		for _, k := range app.Kernels {
			sumI += k.Insts()
			sumT += k.TimeMS(fast)
		}
		tp := sumI / sumT

		win := make([]core.WindowKernel, 0, 3)
		for j := 0; j < 3 && j < app.Len(); j++ {
			k := app.Kernels[j]
			m := k.Evaluate(fast)
			win = append(win, core.WindowKernel{
				ExecIndex: j,
				Rec:       counters.Record{Counters: k.Counters(), TimeMS: m.TimeMS, PowerW: m.GPUW + m.NBW},
				ExpInsts:  k.Insts(),
				Rank:      j,
			})
		}
		_, _, gEvals := opt.OptimizeWindow(win, core.NewTracker(tp))
		bt := opt.BruteForceWindow(win, core.NewTracker(tp))
		if !bt.Feasible {
			t.AddRow(name+" (infeasible)", float64(gEvals), float64(bt.Combos), 0, 0)
			continue
		}
		// Energy of the greedy plan under the same exhaustive pricing:
		// re-run greedy choices through the window to compare plan energy.
		gPlanE := windowPlanEnergy(opt, win, core.NewTracker(tp))
		gap := 100 * (gPlanE - bt.EnergyMJ) / bt.EnergyMJ
		ratio := float64(bt.Combos) / float64(gEvals)
		t.AddRow(name, float64(gEvals), float64(bt.Combos), ratio, gap)
		ratios = append(ratios, ratio)
		gaps = append(gaps, gap)
	}
	t.Note("mean search-cost ratio %.0fx, mean energy gap %.1f%% (paper: 65x cheaper than backtracking, near-optimal)",
		stats.Mean(ratios), stats.Mean(gaps))
	return t, nil
}

// windowPlanEnergy replays the greedy window optimization and sums the
// predicted energy of every kernel's chosen configuration.
func windowPlanEnergy(opt *core.Optimizer, win []core.WindowKernel, tr *core.Tracker) float64 {
	total := 0.0
	spec := tr.Clone()
	// Greedy assigns kernels in rank order with headroom carry-over; we
	// reproduce the plan by re-optimizing the shrinking window, applying
	// one decision at a time in execution order (the receding realization
	// of the plan).
	remaining := append([]core.WindowKernel(nil), win...)
	for len(remaining) > 0 {
		cfg, est, _ := opt.OptimizeWindow(remaining, spec)
		curIdx := 0
		for i, w := range remaining {
			if w.ExecIndex < remaining[curIdx].ExecIndex {
				curIdx = i
			}
		}
		cur := remaining[curIdx]
		total += predict.EnergyMJ(est, cfg)
		spec.Add(cur.ExpInsts, est.TimeMS)
		remaining = append(remaining[:curIdx], remaining[curIdx+1:]...)
	}
	return total
}

// runFullSpace runs MPC over all five GPU DPM states — configurations
// the paper's testbed did not capture — and reports the additional
// savings the two extra states buy.
func runFullSpace(f *Fixture) (*Table, error) {
	t := &Table{
		ID: "fullspace", Title: "MPC (perfect prediction, no overhead) on the 336- vs 560-config space",
		Columns: []string{"benchmark", "save% 336", "save% 560", "speedup 336", "speedup 560"},
	}
	fullEng := sim.NewEngine(hw.FullSpace())
	fullEng.Cost = sim.CostModel{}
	var s336, s560 []float64
	for i := range f.Apps {
		app := &f.Apps[i]
		base, target := f.Baseline(app)
		oracle := f.Oracle(app)

		mDef := policy.NewMPC(oracle, f.Space, policy.WithFullHorizon())
		rsDef, err := steadyRun(f.Free, app, target, mDef, 1)
		if err != nil {
			return nil, err
		}
		mFull := policy.NewMPC(oracle, hw.FullSpace(), policy.WithFullHorizon())
		rsFull, err := steadyRun(fullEng, app, target, mFull, 1)
		if err != nil {
			return nil, err
		}
		cDef := sim.Compare(rsDef[1], base)
		cFull := sim.Compare(rsFull[1], base)
		t.AddRow(app.Name, cDef.EnergySavingsPct, cFull.EnergySavingsPct, cDef.Speedup, cFull.Speedup)
		s336 = append(s336, cDef.EnergySavingsPct)
		s560 = append(s560, cFull.EnergySavingsPct)
	}
	d := stats.Mean(s560) - stats.Mean(s336)
	if math.IsNaN(d) {
		d = 0
	}
	t.Note("the two extra DPM states buy %.1f%% additional mean savings", d)
	return t, nil
}

// runPredictorAblation compares the deployed Random Forest against the
// related-work linear-regression family (§VII, Paul et al.) — both on
// raw accuracy and driving MPC end to end.
func runPredictorAblation(f *Fixture) (*Table, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	lin, err := predict.TrainLinearRegression(predict.DefaultTrainOptions(rfSeed))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "predictorablation", Title: "Random Forest vs linear regression: accuracy and end-to-end MPC",
		Columns: []string{"model", "time MAPE %", "power MAPE %", "MPC save%", "MPC speedup"},
	}
	models := []predict.Model{rf, lin}
	for _, model := range models {
		var tms, pms, saves, spds []float64
		for i := range f.Apps {
			app := &f.Apps[i]
			base, target := f.Baseline(app)
			uniq := map[string]bool{}
			var ks []kernel.Kernel
			for _, k := range app.Kernels {
				key := fmt.Sprintf("%s@%g", k.Name(), k.InputScale)
				if !uniq[key] {
					uniq[key] = true
					ks = append(ks, k)
				}
			}
			tm, pm := predict.MAPE(model, ks, f.Space)
			tms = append(tms, 100*tm)
			pms = append(pms, 100*pm)

			m := policy.NewMPC(model, f.Space)
			rs, err := steadyRun(f.Engine, app, target, m, 1)
			if err != nil {
				return nil, err
			}
			c := sim.Compare(rs[1], base)
			saves = append(saves, c.EnergySavingsPct)
			spds = append(spds, c.Speedup)
		}
		t.AddRow(model.Name(), stats.Mean(tms), stats.Mean(pms), stats.Mean(saves), stats.GeoMean(spds))
	}
	t.Note("the paper selected Random Forest because 'it gave the highest accuracy among other learning algorithms' (§IV-A3);")
	t.Note("MPC's feedback keeps end-to-end results close even under the weaker model (the Fig. 13 effect)")
	return t, nil
}

// runTransitionAblation charges a per-knob DVFS/CU reconfiguration stall
// that the paper (and most of the literature) ignores, and measures how
// robust each scheme's savings are to it. MPC changes configurations
// deliberately; PPK churns on every misprediction.
func runTransitionAblation(f *Fixture) (*Table, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "transitionablation", Title: "Sensitivity to DVFS transition stalls (per-knob cost in ms)",
		Columns: []string{"scheme/cost", "mean save%", "geomean speedup", "mean knob changes"},
	}
	for _, transMS := range []float64{0, 0.05, 0.2} {
		eng := sim.NewEngine(f.Space)
		eng.Cost.TransitionMS = transMS
		for _, scheme := range []string{"ppk", "mpc"} {
			var saves, spds, changes []float64
			for i := range f.Apps {
				app := &f.Apps[i]
				base, target := f.Baseline(app)
				var res *sim.Result
				if scheme == "ppk" {
					r, err := eng.Run(app, policy.NewPPK(rf, f.Space), target, true)
					if err != nil {
						return nil, err
					}
					res = r
				} else {
					m := policy.NewMPC(rf, f.Space)
					rs, err := steadyRun(eng, app, target, m, 1)
					if err != nil {
						return nil, err
					}
					res = rs[1]
				}
				c := sim.Compare(res, base)
				saves = append(saves, c.EnergySavingsPct)
				spds = append(spds, c.Speedup)
				changes = append(changes, float64(res.KnobChanges()))
			}
			t.AddRow(fmt.Sprintf("%s @ %.2f ms", scheme, transMS),
				stats.Mean(saves), stats.GeoMean(spds), stats.Mean(changes))
		}
	}
	t.Note("transition stalls are absent from the paper's model; savings should degrade gracefully as they grow")
	return t, nil
}

// runThermalStress puts every scheme in a thermally constrained package
// (the pressure that motivated the paper's APU choice, §V): sustained
// Turbo Core boost overheats and throttles, while MPC's lower power
// keeps the die below the limit — energy efficiency becomes performance.
func runThermalStress(f *Fixture) (*Table, error) {
	t := &Table{
		ID: "thermalstress", Title: "Tight thermal package (1.0 C/W): throttling vs policy",
		Columns: []string{"benchmark/policy", "max temp C", "throttled ms", "speedup vs cold TC", "save%"},
	}
	tp := thermal.DefaultParams()
	tp.ResistanceCW = 1.0
	tp.TimeConstMS = 120
	hotEng := sim.NewEngine(f.Space)
	hotEng.Thermal = &tp

	for _, name := range []string{"NBody", "lbm", "XSBench"} {
		// Sustain the load past the package's RC constant by tripling the
		// kernel sequence (three consecutive invocations, thermally).
		app3 := *f.App(name)
		app3.Kernels = nil
		for r := 0; r < 3; r++ {
			app3.Kernels = append(app3.Kernels, f.App(name).Kernels...)
		}
		app := &app3
		// Cold baseline: the paper's environment (no thermal pressure).
		coldEng := f.Free
		cold, target, err := coldEng.Baseline(app)
		if err != nil {
			return nil, err
		}

		hotTC, _, err := hotEng.Baseline(app)
		if err != nil {
			return nil, err
		}
		oracle := predict.NewOracle()
		for _, k := range app.Kernels {
			oracle.Register(k)
		}
		m := policy.NewMPC(oracle, f.Space)
		rs, err := steadyRun(hotEng, app, target, m, 1)
		if err != nil {
			return nil, err
		}
		hotMPC := rs[1]

		cTC := sim.Compare(hotTC, cold)
		cMPC := sim.Compare(hotMPC, cold)
		t.AddRow(name+"/turbo-core", hotTC.MaxTempC(), hotTC.ThrottledMS(), cTC.Speedup, cTC.EnergySavingsPct)
		t.AddRow(name+"/mpc", hotMPC.MaxTempC(), hotMPC.ThrottledMS(), cMPC.Speedup, cMPC.EnergySavingsPct)
	}
	t.Note("in a tight package the baseline throttles; MPC's energy savings buy back the lost performance")
	return t, nil
}

// runGovernors adds the general-purpose DVFS governor family as extra
// reference points around Turbo Core, PPK and MPC.
func runGovernors(f *Fixture) (*Table, error) {
	t := &Table{
		ID: "governors", Title: "General-purpose governors vs kernel-aware policies (oracle predictor)",
		Columns: []string{"policy", "mean save%", "geomean speedup"},
	}
	type mk struct {
		name string
		make func(app *workload.App) sim.Policy
	}
	schemes := []mk{
		{"governor-performance", func(*workload.App) sim.Policy { return policy.NewPerformanceGovernor() }},
		{"governor-powersave", func(*workload.App) sim.Policy { return policy.NewPowersaveGovernor() }},
		{"governor-ondemand", func(*workload.App) sim.Policy { return policy.NewOndemandGovernor(f.Space) }},
		{"equalizer", func(*workload.App) sim.Policy { return policy.NewEqualizer(f.Space) }},
		{"ppk", func(app *workload.App) sim.Policy { return policy.NewPPK(f.Oracle(app), f.Space) }},
	}
	for _, s := range schemes {
		var saves, spds []float64
		for i := range f.Apps {
			app := &f.Apps[i]
			base, target := f.Baseline(app)
			res, err := f.Engine.Run(app, s.make(app), target, true)
			if err != nil {
				return nil, err
			}
			c := sim.Compare(res, base)
			saves = append(saves, c.EnergySavingsPct)
			spds = append(spds, c.Speedup)
		}
		t.AddRow(s.name, stats.Mean(saves), stats.GeoMean(spds))
	}
	// MPC steady state for the same comparison.
	var saves, spds []float64
	for i := range f.Apps {
		app := &f.Apps[i]
		base, target := f.Baseline(app)
		m := policy.NewMPC(f.Oracle(app), f.Space)
		rs, err := steadyRun(f.Engine, app, target, m, 1)
		if err != nil {
			return nil, err
		}
		c := sim.Compare(rs[1], base)
		saves = append(saves, c.EnergySavingsPct)
		spds = append(spds, c.Speedup)
	}
	t.AddRow("mpc (steady)", stats.Mean(saves), stats.GeoMean(spds))
	t.Note("powersave saves watts but destroys throughput; performance wastes energy; kernel-aware policies dominate both")
	return t, nil
}

// runPopulation checks that the headline result is not an artifact of
// the 15 hand-picked benchmarks: 40 randomly generated irregular apps,
// MPC vs PPK vs Turbo Core with perfect prediction.
func runPopulation(f *Fixture) (*Table, error) {
	const nApps = 40
	t := &Table{
		ID: "population", Title: "40 random irregular applications (oracle predictor)",
		Columns: []string{"scheme", "mean save%", "p10 save%", "p90 save%", "geomean speedup", "min speedup"},
	}
	rng := rand.New(rand.NewSource(424242))
	apps := make([]workload.App, nApps)
	for i := range apps {
		apps[i] = workload.RandomApp(fmt.Sprintf("pop%02d", i), rng, 3+rng.Intn(5), 8+rng.Intn(25))
	}
	type agg struct{ saves, spds []float64 }
	res := map[string]*agg{"ppk": {}, "mpc": {}}
	for i := range apps {
		app := &apps[i]
		base, target, err := f.Free.Baseline(app)
		if err != nil {
			return nil, err
		}
		oracle := predict.NewOracle()
		for _, k := range app.Kernels {
			oracle.Register(k)
		}
		pres, err := f.Free.Run(app, policy.NewPPK(oracle, f.Space), target, true)
		if err != nil {
			return nil, err
		}
		c := sim.Compare(pres, base)
		res["ppk"].saves = append(res["ppk"].saves, c.EnergySavingsPct)
		res["ppk"].spds = append(res["ppk"].spds, c.Speedup)

		m := policy.NewMPC(oracle, f.Space)
		rs, err := steadyRun(f.Free, app, target, m, 1)
		if err != nil {
			return nil, err
		}
		c = sim.Compare(rs[1], base)
		res["mpc"].saves = append(res["mpc"].saves, c.EnergySavingsPct)
		res["mpc"].spds = append(res["mpc"].spds, c.Speedup)
	}
	for _, name := range []string{"ppk", "mpc"} {
		a := res[name]
		p10, _ := stats.Percentile(a.saves, 10)
		p90, _ := stats.Percentile(a.saves, 90)
		minSpd, _, _ := stats.MinMax(a.spds)
		t.AddRow(name, stats.Mean(a.saves), p10, p90, stats.GeoMean(a.spds), minSpd)
	}
	t.Note("the paper sampled 15 of 73 studied benchmarks; this checks the conclusion on a fresh random population")
	return t, nil
}

// runFeatureImportance reports which model inputs carry the predictive
// signal — the reverse of the paper's §IV-A2 counter selection, which
// clustered correlated counters and kept eight representatives.
func runFeatureImportance(f *Fixture) (*Table, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	timeImp, powerImp, err := rf.FeatureImportance(predict.DefaultTrainOptions(rfSeed))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "featureimportance", Title: "Random Forest feature importance (mean decrease in impurity)",
		Columns: []string{"feature", "time %", "power %"},
	}
	names := predict.FeatureNames()
	for i, n := range names {
		t.AddRow(n, 100*timeImp[i], 100*powerImp[i])
	}
	t.Note("time prediction leans on counters + GPU/NB physics; power on the rail voltage and CU count")
	return t, nil
}
