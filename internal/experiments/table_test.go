package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{
		ID: "t", Title: "test",
		Columns: []string{"name", "a", "b"},
	}
	tab.AddRow("short", 1, 2)
	tab.AddRow("a-much-longer-name", 33.333, 4444)
	tab.Note("note %d", 7)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // header line, columns, rule, 2 rows, note
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "== t: test ==") {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(out, "note 7") {
		t.Error("note missing")
	}
	// Data rows align under the header columns (same rune width).
	if len(lines[3]) == 0 || len(lines[4]) == 0 {
		t.Error("empty data rows")
	}
}

func TestTableRenderValueFormats(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1234.5, "1234"}, // large: no decimals (rounded)
		{33.333, "33.3"}, // medium: one decimal
		{0.123, "0.123"}, // small: three decimals
		{-5.5, "-5.500"},
	}
	for _, c := range cases {
		if got := formatValue(c.v); !strings.HasPrefix(got, c.want[:3]) {
			t.Errorf("formatValue(%v) = %q, want prefix of %q", c.v, got, c.want)
		}
	}
}

func TestTableRenderRowsWithoutValues(t *testing.T) {
	// Rows carrying only names (tableII style) must render without
	// panicking even with more columns declared.
	tab := &Table{ID: "x", Title: "names only", Columns: []string{"row", "v"}}
	tab.AddRow("just-a-name")
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), "just-a-name") {
		t.Error("row name missing")
	}
}

// TestDeterministicRegeneration pins the reproducibility claim: two runs
// of the same experiment render byte-identical output.
func TestDeterministicRegeneration(t *testing.T) {
	for _, id := range []string{"tableI", "fig2", "fig3", "fig4", "tosolver"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		render := func() string {
			tab, err := r.Run(Shared())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			return buf.String()
		}
		a, b := render(), render()
		if a != b {
			t.Errorf("%s renders differently across runs", id)
		}
	}
}

func TestRunnerTitlesNonEmpty(t *testing.T) {
	for _, r := range Runners() {
		if r.Title == "" || r.ID == "" {
			t.Errorf("runner %q has empty metadata", r.ID)
		}
	}
}
