package experiments

import (
	"mpcdvfs/internal/policy"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/stats"
)

func init() {
	register("fig14", "MPC energy and performance overheads vs Turbo Core (Fig. 14)", runFig14)
	register("fig15", "Average MPC horizon as % of the number of kernels (Fig. 15)", runFig15)
	register("horizonablation", "Adaptive vs full horizon, with and without overheads (§VI-E)", runHorizonAblation)
	register("searchablation", "Greedy hill climbing vs exhaustive per-kernel search inside MPC", runSearchAblation)
	register("orderablation", "Search-order heuristic vs plain execution order", runOrderAblation)
	register("tosolver", "Theoretically Optimal solver: knapsack DP vs Lagrangian relaxation", runTOSolver)
}

func runFig14(f *Fixture) (*Table, error) {
	entries, err := fig8Cached(f)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "fig14", Title: "Steady-state MPC optimization overheads as % of Turbo Core totals",
		Columns: []string{"benchmark", "energy ov %", "perf ov %"},
	}
	var eo, po []float64
	for _, e := range entries {
		eov := 100 * e.mpc.OverheadEnergyMJ() / e.base.TotalEnergyMJ()
		pov := 100 * e.mpc.OverheadMS() / e.base.TotalTimeMS()
		t.AddRow(e.app.Name, eov, pov)
		eo = append(eo, eov)
		po = append(po, pov)
	}
	t.Note("mean: %.2f%% energy, %.2f%% performance overhead", stats.Mean(eo), stats.Mean(po))
	t.Note("paper: average 0.15%% energy (max 0.53%% Spmv), 0.3%% performance (max 1.2%% Spmv)")
	return t, nil
}

func runFig15(f *Fixture) (*Table, error) {
	entries, err := fig8Cached(f)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "fig15", Title: "Average adaptive horizon length as % of N",
		Columns: []string{"benchmark", "avg horizon %"},
	}
	var all []float64
	for _, e := range entries {
		frac, ok := e.m.AvgHorizonFrac()
		if !ok {
			frac = 0
		}
		t.AddRow(e.app.Name, 100*frac)
		all = append(all, 100*frac)
	}
	t.Note("mean: %.0f%%", stats.Mean(all))
	t.Note("paper: NBody/lbm/EigenValue/XSBench explore the full horizon; short-kernel apps shrink it significantly")
	return t, nil
}

func runHorizonAblation(f *Fixture) (*Table, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "horizonablation", Title: "Adaptive vs full horizon (steady state, RF predictor)",
		Columns: []string{"scheme", "mean save%", "geomean speedup"},
	}
	type variant struct {
		name string
		eng  *sim.Engine
		opts []policy.MPCOption
	}
	variants := []variant{
		{"adaptive w/ overheads", f.Engine, nil},
		{"full w/ overheads", f.Engine, []policy.MPCOption{policy.WithFullHorizon()}},
		{"adaptive no overheads", f.Free, nil},
		{"full no overheads", f.Free, []policy.MPCOption{policy.WithFullHorizon()}},
	}
	for _, v := range variants {
		var saves, spds []float64
		for i := range f.Apps {
			app := &f.Apps[i]
			base, target := f.Baseline(app)
			m := policy.NewMPC(rf, f.Space, v.opts...)
			rs, err := steadyRun(v.eng, app, target, m, 1)
			if err != nil {
				return nil, err
			}
			c := sim.Compare(rs[1], base)
			saves = append(saves, c.EnergySavingsPct)
			spds = append(spds, c.Speedup)
		}
		t.AddRow(v.name, stats.Mean(saves), stats.GeoMean(spds))
	}
	t.Note("paper: with overheads, full horizon drops to 15.4%% savings with 12.8%% perf loss vs 24.8%%/1.8%% adaptive;")
	t.Note("paper: without overheads, full horizon saves only ~2.6%% more energy than adaptive")
	return t, nil
}

func runSearchAblation(f *Fixture) (*Table, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "searchablation", Title: "Per-kernel search inside MPC: greedy hill climb vs exhaustive sweep (no overhead charged)",
		Columns: []string{"scheme", "mean save%", "geomean speedup", "mean evals/run"},
	}
	for _, exhaustive := range []bool{false, true} {
		var saves, spds, evals []float64
		for i := range f.Apps {
			app := &f.Apps[i]
			base, target := f.Baseline(app)
			opts := []policy.MPCOption{policy.WithFullHorizon()}
			if exhaustive {
				opts = append(opts, policy.WithExhaustiveSearch())
			}
			m := policy.NewMPC(rf, f.Space, opts...)
			rs, err := steadyRun(f.Free, app, target, m, 1)
			if err != nil {
				return nil, err
			}
			c := sim.Compare(rs[1], base)
			saves = append(saves, c.EnergySavingsPct)
			spds = append(spds, c.Speedup)
			evals = append(evals, float64(rs[1].Evals()))
		}
		name := "greedy hill climb"
		if exhaustive {
			name = "exhaustive sweep"
		}
		t.AddRow(name, stats.Mean(saves), stats.GeoMean(spds), stats.Mean(evals))
	}
	t.Note("paper: greedy search cuts evaluations by ~19x per kernel (65x vs backtracking MPC) while compromising little optimality")
	return t, nil
}

func runOrderAblation(f *Fixture) (*Table, error) {
	rf, err := f.RF()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "orderablation", Title: "Window optimization order: search-order heuristic vs execution order",
		Columns: []string{"scheme", "mean save%", "geomean speedup"},
	}
	for _, naive := range []bool{false, true} {
		var saves, spds []float64
		for i := range f.Apps {
			app := &f.Apps[i]
			base, target := f.Baseline(app)
			opts := []policy.MPCOption{}
			if naive {
				opts = append(opts, policy.WithExecutionOrder())
			}
			m := policy.NewMPC(rf, f.Space, opts...)
			rs, err := steadyRun(f.Engine, app, target, m, 1)
			if err != nil {
				return nil, err
			}
			c := sim.Compare(rs[1], base)
			saves = append(saves, c.EnergySavingsPct)
			spds = append(spds, c.Speedup)
		}
		name := "search-order heuristic"
		if naive {
			name = "execution order"
		}
		t.AddRow(name, stats.Mean(saves), stats.GeoMean(spds))
	}
	t.Note("paper: the search order is what lets MPC avoid revisiting optimized kernels (exponential -> polynomial)")
	return t, nil
}

func runTOSolver(f *Fixture) (*Table, error) {
	t := &Table{
		ID: "tosolver", Title: "TO solver ablation: MCKP dynamic program vs Lagrangian relaxation",
		Columns: []string{"solver", "mean save%", "geomean speedup"},
	}
	for _, lagr := range []bool{false, true} {
		var saves, spds []float64
		for i := range f.Apps {
			app := &f.Apps[i]
			base, target := f.Baseline(app)
			to := policy.NewTheoreticallyOptimal(app, f.Space)
			to.UseLagrangian = lagr
			res, err := f.Free.Run(app, to, target, true)
			if err != nil {
				return nil, err
			}
			c := sim.Compare(res, base)
			saves = append(saves, c.EnergySavingsPct)
			spds = append(spds, c.Speedup)
		}
		name := "knapsack DP"
		if lagr {
			name = "Lagrangian relaxation"
		}
		t.AddRow(name, stats.Mean(saves), stats.GeoMean(spds))
	}
	t.Note("DP is exact up to time discretization; the relaxation is optimal on the convex hull and much faster")
	return t, nil
}
