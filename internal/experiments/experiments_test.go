package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The experiments are the reproduction's deliverable: these tests assert
// the qualitative results ("who wins, by roughly what factor") that the
// paper reports, not exact numbers.

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tab, err := r.Run(Shared())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id {
		t.Fatalf("runner %s produced table %s", id, tab.ID)
	}
	return tab
}

func rowByName(t *testing.T, tab *Table, name string) Row {
	t.Helper()
	for _, r := range tab.Rows {
		if strings.HasPrefix(r.Name, name) {
			return r
		}
	}
	t.Fatalf("%s: no row %q", tab.ID, name)
	return Row{}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"tableI", "fig2", "fig3", "tableII", "tableIV",
		"fig4", "fig8", "fig9", "fig10", "fig11", "fig12", "mape", "fig13",
		"fig14", "fig15", "horizonablation", "searchablation", "orderablation", "tosolver",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(Runners()) < len(want) {
		t.Errorf("registry has %d runners, want >= %d", len(Runners()), len(want))
	}
}

func TestRunnersOrderedAndRenderable(t *testing.T) {
	rs := Runners()
	for i := 1; i < len(rs); i++ {
		if order(rs[i-1].ID) > order(rs[i].ID) {
			t.Errorf("runners out of order: %s before %s", rs[i-1].ID, rs[i].ID)
		}
	}
	// Rendering a representative table must not panic and must contain
	// its ID.
	tab := runExp(t, "tableI")
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), "tableI") {
		t.Error("rendered table missing ID")
	}
}

func TestTableIValues(t *testing.T) {
	tab := runExp(t, "tableI")
	p1 := rowByName(t, tab, "P1")
	if p1.Values[0] != 1.325 || p1.Values[1] != 3.9 {
		t.Errorf("P1 row = %v", p1.Values)
	}
	dpm4 := rowByName(t, tab, "DPM4")
	if dpm4.Values[1] != 720 {
		t.Errorf("DPM4 freq = %v", dpm4.Values[1])
	}
}

func TestFig2Shapes(t *testing.T) {
	tab := runExp(t, "fig2")
	// Compute-bound speedup grows with CUs at NB0.
	cb := rowByName(t, tab, "MaxFlops/NB0")
	if !(cb.Values[3] > cb.Values[1] && cb.Values[1] > cb.Values[0]) {
		t.Errorf("compute-bound CU scaling broken: %v", cb.Values)
	}
	// Memory-bound saturates: NB2 ~ NB0 at 8 CUs.
	mb2 := rowByName(t, tab, "readGlobalMemoryCoalesced/NB2")
	mb0 := rowByName(t, tab, "readGlobalMemoryCoalesced/NB0")
	if mb0.Values[3]/mb2.Values[3] > 1.05 {
		t.Errorf("memory-bound does not saturate from NB2: %v vs %v", mb0.Values[3], mb2.Values[3])
	}
	// Peak kernel slows past 4 CUs.
	pk := rowByName(t, tab, "writeCandidates/NB0")
	if !(pk.Values[1] > pk.Values[3]) {
		t.Errorf("peak kernel does not peak: %v", pk.Values)
	}
	// Unscalable flat within 5%.
	us := rowByName(t, tab, "astar/NB0")
	if us.Values[3]/us.Values[0] > 1.05 {
		t.Errorf("unscalable kernel scales: %v", us.Values)
	}
}

func TestFig3PhaseTransitions(t *testing.T) {
	tab := runExp(t, "fig3")
	spmv := rowByName(t, tab, "Spmv")
	if !(spmv.Values[0] > 1.5 && spmv.Values[len(spmv.Values)-1] < 0.5) {
		t.Errorf("Spmv not high-to-low: first %v last %v", spmv.Values[0], spmv.Values[len(spmv.Values)-1])
	}
	km := rowByName(t, tab, "kmeans")
	if !(km.Values[0] < 0.3 && km.Values[1] > 0.9) {
		t.Errorf("kmeans not low-to-high: %v %v", km.Values[0], km.Values[1])
	}
}

func TestFig4LimitStudyShape(t *testing.T) {
	tab := runExp(t, "fig4")
	// Regular apps: PPK within a few points of TO on both axes.
	for _, name := range []string{"mandelbulbGPU", "NBody"} {
		r := rowByName(t, tab, name)
		if d := r.Values[1] - r.Values[0]; d > 8 {
			t.Errorf("%s: PPK trails TO by %.1f%% energy on a regular app", name, d)
		}
		if r.Values[2] < 0.98 {
			t.Errorf("%s: PPK speedup %.3f on a regular app", name, r.Values[2])
		}
	}
	// Irregular apps: PPK shows real performance losses; TO never does.
	losses := 0
	for _, name := range []string{"Spmv", "kmeans", "XSBench", "EigenValue", "lulesh", "color", "mis"} {
		r := rowByName(t, tab, name)
		if r.Values[2] < 0.95 {
			losses++
		}
		if r.Values[3] < 0.999 {
			t.Errorf("%s: TO speedup %.3f < 1", name, r.Values[3])
		}
	}
	if losses < 3 {
		t.Errorf("PPK lost >5%% performance on only %d irregular apps; paper shows widespread losses", losses)
	}
}

func TestFig8HeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "fig8")
	var mpcSaves, mpcSpd float64
	n := 0.0
	worstSpd := 2.0
	for _, r := range tab.Rows {
		mpcSaves += r.Values[1]
		mpcSpd += r.Values[3]
		if r.Values[3] < worstSpd {
			worstSpd = r.Values[3]
		}
		n++
	}
	mpcSaves /= n
	mpcSpd /= n
	// Paper: 24.8% savings, 1.8% loss. Accept the model's scale: >= 15%
	// savings, <= 6% mean loss, no catastrophic outlier.
	if mpcSaves < 15 {
		t.Errorf("mean MPC savings %.1f%%, want >= 15%%", mpcSaves)
	}
	if mpcSpd < 0.94 {
		t.Errorf("mean MPC speedup %.3f, want >= 0.94", mpcSpd)
	}
	if worstSpd < 0.80 {
		t.Errorf("worst MPC speedup %.3f; paper's worst (srad) is 0.843", worstSpd)
	}
}

func TestFig9MPCBeatsPPK(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "fig9")
	var saves, spd float64
	n := 0.0
	for _, r := range tab.Rows {
		saves += r.Values[0]
		spd += r.Values[1]
		n++
	}
	if saves/n < 0 {
		t.Errorf("mean energy savings over PPK %.1f%%, want > 0 (paper: 6.6%%)", saves/n)
	}
	if spd/n < 1.02 {
		t.Errorf("mean speedup over PPK %.3f, want > 1.02 (paper: 1.096)", spd/n)
	}
}

func TestFig10GPUSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "fig10")
	pos := 0
	for _, r := range tab.Rows {
		if r.Values[1] > 0 {
			pos++
		}
	}
	if pos < 12 {
		t.Errorf("MPC GPU savings positive on only %d/15 apps", pos)
	}
}

func TestFig11AmortizationMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "fig11")
	improving := 0
	for _, r := range tab.Rows {
		// Savings at 10 re-executions >= savings at 1 (amortization).
		if r.Values[1] >= r.Values[0]-0.5 {
			improving++
		}
		// Steady state ~ 100 re-executions.
		if d := r.Values[3] - r.Values[2]; d > 3 || d < -3 {
			t.Errorf("%s: 100-reexec savings %.1f far from steady %.1f", r.Name, r.Values[2], r.Values[3])
		}
	}
	if improving < 11 {
		t.Errorf("amortization improves savings on only %d/15 apps", improving)
	}
}

func TestFig12MPCNearTO(t *testing.T) {
	tab := runExp(t, "fig12")
	var mpc, to float64
	for _, r := range tab.Rows {
		mpc += r.Values[0]
		to += r.Values[1]
	}
	if frac := mpc / to; frac < 0.85 {
		t.Errorf("MPC achieves %.0f%% of TO savings, paper reports 92%%", 100*frac)
	}
	for _, r := range tab.Rows {
		if r.Values[2] < 0.92 {
			t.Errorf("%s: perfect-prediction MPC speedup %.3f", r.Name, r.Values[2])
		}
	}
}

func TestMAPEInUsableRange(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "mape")
	var tm, pm float64
	n := 0.0
	for _, r := range tab.Rows {
		tm += r.Values[0]
		pm += r.Values[1]
		n++
	}
	tm /= n
	pm /= n
	if tm < 5 || tm > 70 {
		t.Errorf("time MAPE %.1f%% outside plausible band (paper: 25%%)", tm)
	}
	if pm < 2 || pm > 30 {
		t.Errorf("power MAPE %.1f%% outside plausible band (paper: 12%%)", pm)
	}
	if pm >= tm {
		t.Errorf("power MAPE %.1f%% >= time MAPE %.1f%%; paper has time error higher", pm, tm)
	}
}

func TestFig13InsensitiveToPredictionError(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "fig13")
	// Mean savings of RF vs Err_0 within a few points (paper: 25 vs 28).
	var rf, err0 float64
	n := 0.0
	for _, r := range tab.Rows {
		rf += r.Values[0]
		err0 += r.Values[3]
		n++
	}
	if d := (err0 - rf) / n; d > 6 || d < -6 {
		t.Errorf("RF trails perfect model by %.1f%% savings; paper reports ~3%%", d)
	}
}

func TestFig14OverheadsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "fig14")
	for _, r := range tab.Rows {
		if r.Values[0] > 1.5 {
			t.Errorf("%s: energy overhead %.2f%% (paper max 0.53%%)", r.Name, r.Values[0])
		}
		if r.Values[1] > 3 {
			t.Errorf("%s: perf overhead %.2f%% (paper max 1.2%%)", r.Name, r.Values[1])
		}
	}
}

func TestFig15HorizonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "fig15")
	// Long-kernel apps near full horizon.
	for _, name := range []string{"NBody", "lbm", "EigenValue", "XSBench"} {
		if v := rowByName(t, tab, name).Values[0]; v < 75 {
			t.Errorf("%s: avg horizon %.0f%%, want near full (paper)", name, v)
		}
	}
	// Short-kernel input-varying apps significantly shrunk.
	shrunk := 0
	for _, name := range []string{"color", "pb-bfs", "mis", "lulesh", "lud"} {
		if rowByName(t, tab, name).Values[0] < 50 {
			shrunk++
		}
	}
	if shrunk < 4 {
		t.Errorf("only %d/5 short-kernel apps shrank the horizon below 50%%", shrunk)
	}
}

func TestHorizonAblationDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "horizonablation")
	adaptive := rowByName(t, tab, "adaptive w/ overheads")
	full := rowByName(t, tab, "full w/ overheads")
	if full.Values[1] >= adaptive.Values[1] {
		t.Errorf("full horizon w/ overheads speedup %.3f not below adaptive %.3f (paper: 12.8%% vs 1.8%% loss)",
			full.Values[1], adaptive.Values[1])
	}
	adFree := rowByName(t, tab, "adaptive no overheads")
	fullFree := rowByName(t, tab, "full no overheads")
	if d := fullFree.Values[0] - adFree.Values[0]; d > 6 {
		t.Errorf("without overheads full horizon gains %.1f%% over adaptive; paper says only ~2.6%%", d)
	}
}

func TestSearchAblationEvalReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "searchablation")
	greedy := rowByName(t, tab, "greedy hill climb")
	exhaustive := rowByName(t, tab, "exhaustive sweep")
	if ratio := exhaustive.Values[2] / greedy.Values[2]; ratio < 8 {
		t.Errorf("exhaustive/greedy eval ratio %.1f, want >= 8 (paper: ~19x)", ratio)
	}
	if d := exhaustive.Values[0] - greedy.Values[0]; d > 5 {
		t.Errorf("greedy trails exhaustive by %.1f%% savings; should compromise little", d)
	}
}

func TestTOSolverAgreement(t *testing.T) {
	tab := runExp(t, "tosolver")
	dp := rowByName(t, tab, "knapsack DP")
	lg := rowByName(t, tab, "Lagrangian")
	if d := dp.Values[0] - lg.Values[0]; d < -1 || d > 3 {
		t.Errorf("DP (%.1f%%) and Lagrangian (%.1f%%) diverge", dp.Values[0], lg.Values[0])
	}
	if dp.Values[1] < 0.999 || lg.Values[1] < 0.999 {
		t.Errorf("TO solvers violate the perf target: %.3f / %.3f", dp.Values[1], lg.Values[1])
	}
}

func TestFixtureAccessors(t *testing.T) {
	f := Shared()
	if f.App("Spmv").Name != "Spmv" {
		t.Error("App lookup broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown app should panic")
		}
	}()
	f.App("nonesuch")
}

func TestOverheadHidingExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "overheadhiding")
	// Hiding must never increase visible overhead, and must strictly
	// reduce it for at least the short-kernel apps.
	reduced := 0
	for _, r := range tab.Rows {
		if r.Values[1] > r.Values[0]+1e-9 {
			t.Errorf("%s: hidden overhead %.3f%% above back-to-back %.3f%%", r.Name, r.Values[1], r.Values[0])
		}
		if r.Values[1] < r.Values[0]-1e-6 {
			reduced++
		}
		// Horizons must not shrink when overhead is hidden.
		if r.Values[3] < r.Values[2]-10 {
			t.Errorf("%s: horizon shrank from %.0f%% to %.0f%% with hiding", r.Name, r.Values[2], r.Values[3])
		}
	}
	if reduced < 5 {
		t.Errorf("hiding reduced visible overhead on only %d/15 apps", reduced)
	}
}

func TestBacktrackExtension(t *testing.T) {
	tab := runExp(t, "backtrack")
	feasibleRows := 0
	for _, r := range tab.Rows {
		if strings.Contains(r.Name, "infeasible") {
			continue
		}
		feasibleRows++
		if r.Values[2] < 10 {
			t.Errorf("%s: backtracking only %.0fx more costly than greedy; expected an order of magnitude+", r.Name, r.Values[2])
		}
		if r.Values[3] < -1 || r.Values[3] > 40 {
			t.Errorf("%s: greedy energy gap %.1f%% vs exact window optimum out of band", r.Name, r.Values[3])
		}
	}
	if feasibleRows < 2 {
		t.Errorf("only %d feasible backtracking comparisons", feasibleRows)
	}
}

func TestFullSpaceExtension(t *testing.T) {
	tab := runExp(t, "fullspace")
	for _, r := range tab.Rows {
		// The 560-point space strictly contains the 336-point space, so
		// savings should not get much worse; small regressions can occur
		// because greedy hill climbing walks a longer DPM axis.
		if d := r.Values[0] - r.Values[1]; d > 5 {
			t.Errorf("%s: full space lost %.1f%% savings vs default space", r.Name, d)
		}
	}
}

func TestPredictorAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("needs model training")
	}
	tab := runExp(t, "predictorablation")
	rf := rowByName(t, tab, "random-forest")
	lin := rowByName(t, tab, "linear-regression")
	// The forest wins on power accuracy, and both drive MPC to positive
	// savings without large performance loss (the Fig. 13 robustness).
	if rf.Values[1] >= lin.Values[1] {
		t.Errorf("forest power MAPE %.1f%% not better than linear %.1f%%", rf.Values[1], lin.Values[1])
	}
	for _, r := range []Row{rf, lin} {
		if r.Values[2] <= 0 {
			t.Errorf("%s: MPC savings %.1f%%", r.Name, r.Values[2])
		}
		if r.Values[3] < 0.9 {
			t.Errorf("%s: MPC speedup %.3f", r.Name, r.Values[3])
		}
	}
}

func TestTransitionAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "transitionablation")
	mpc0 := rowByName(t, tab, "mpc @ 0.00")
	mpc2 := rowByName(t, tab, "mpc @ 0.20")
	// Costs must not improve results, and degradation must be graceful.
	if mpc2.Values[1] > mpc0.Values[1]+1e-6 {
		t.Errorf("transition stalls sped MPC up: %.3f vs %.3f", mpc2.Values[1], mpc0.Values[1])
	}
	if d := mpc0.Values[1] - mpc2.Values[1]; d > 0.1 {
		t.Errorf("0.2 ms stalls cost MPC %.1f%% performance; expected graceful degradation", 100*d)
	}
	if mpc0.Values[2] <= 0 {
		t.Error("no knob changes counted")
	}
}

func TestThermalStressExtension(t *testing.T) {
	tab := runExp(t, "thermalstress")
	for _, name := range []string{"NBody", "lbm", "XSBench"} {
		tc := rowByName(t, tab, name+"/turbo-core")
		mpc := rowByName(t, tab, name+"/mpc")
		if mpc.Values[0] >= tc.Values[0] {
			t.Errorf("%s: MPC die temp %.1f not below Turbo Core %.1f", name, mpc.Values[0], tc.Values[0])
		}
		if mpc.Values[1] > tc.Values[1] {
			t.Errorf("%s: MPC throttled more than Turbo Core", name)
		}
	}
	// At least one benchmark must actually throttle the baseline, or the
	// experiment shows nothing.
	throttled := false
	for _, r := range tab.Rows {
		if strings.HasSuffix(r.Name, "turbo-core") && r.Values[1] > 0 {
			throttled = true
		}
	}
	if !throttled {
		t.Error("tight package never throttled the baseline")
	}
}

func TestGovernorsExtension(t *testing.T) {
	tab := runExp(t, "governors")
	perf := rowByName(t, tab, "governor-performance")
	save := rowByName(t, tab, "governor-powersave")
	od := rowByName(t, tab, "governor-ondemand")
	mpc := rowByName(t, tab, "mpc")
	if save.Values[1] > 0.6 {
		t.Errorf("powersave speedup %.2f; should be crippling", save.Values[1])
	}
	if od.Values[0] <= perf.Values[0] {
		t.Error("ondemand should save energy vs the performance governor")
	}
	if mpc.Values[0] <= od.Values[0] || mpc.Values[1] <= od.Values[1] {
		t.Errorf("MPC (%.1f%%, %.3f) does not dominate ondemand (%.1f%%, %.3f)",
			mpc.Values[0], mpc.Values[1], od.Values[0], od.Values[1])
	}
}

func TestPopulationRobustness(t *testing.T) {
	tab := runExp(t, "population")
	ppk := rowByName(t, tab, "ppk")
	mpc := rowByName(t, tab, "mpc")
	// The headline must hold on the random population: MPC at least
	// matches PPK's savings and clearly dominates on worst-case speed.
	if mpc.Values[0] < ppk.Values[0]-2 {
		t.Errorf("population: MPC savings %.1f%% below PPK %.1f%%", mpc.Values[0], ppk.Values[0])
	}
	if mpc.Values[4] < 0.9 {
		t.Errorf("population: MPC min speedup %.3f; constraint machinery failed somewhere", mpc.Values[4])
	}
	if ppk.Values[4] > mpc.Values[4] {
		t.Errorf("population: PPK min speedup %.3f above MPC %.3f (unexpected)", ppk.Values[4], mpc.Values[4])
	}
}

func TestFeatureImportanceExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("needs RF training")
	}
	tab := runExp(t, "featureimportance")
	byName := map[string][]float64{}
	var timeSum, powerSum float64
	for _, r := range tab.Rows {
		byName[r.Name] = r.Values
		timeSum += r.Values[0]
		powerSum += r.Values[1]
	}
	if timeSum < 99 || timeSum > 101 || powerSum < 99 || powerSum > 101 {
		t.Errorf("importances sum to %.1f/%.1f, want 100", timeSum, powerSum)
	}
	// Power must be dominated by the physical config features (voltage,
	// frequency, CUs) — the C·V²f structure of the ground truth.
	phys := byName["railVoltage"][1] + byName["gpuFreqGHz"][1] + byName["numCUs"][1]
	if phys < 40 {
		t.Errorf("physical features carry only %.1f%% of power importance", phys)
	}
	// Time must lean on the workload counters (what the kernel IS).
	work := byName["VALUInsts"][0] + byName["VFetchInsts"][0] + byName["MemUnitStalled"][0]
	if work < 30 {
		t.Errorf("workload counters carry only %.1f%% of time importance", work)
	}
}
