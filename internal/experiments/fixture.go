package experiments

import (
	"fmt"
	"sort"
	"sync"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

// rfSeed fixes the offline Random Forest training; every experiment is
// bit-reproducible.
const rfSeed = 20170204 // HPCA 2017

// Fixture holds everything the experiment runners share: the engine, the
// 15 benchmarks, their Turbo Core baselines, per-app oracles, and the
// lazily trained Random Forest predictor.
type Fixture struct {
	Space  hw.Space
	Engine *sim.Engine // default cost model (overheads charged)
	Free   *sim.Engine // zero-cost engine for overhead-free studies
	Apps   []workload.App

	baseMu    sync.Mutex
	baselines map[string]baselineEntry

	rfOnce sync.Once
	rf     *predict.RandomForest
	rfErr  error

	oracleMu sync.Mutex
	oracles  map[string]*predict.Oracle
}

type baselineEntry struct {
	res    *sim.Result
	target sim.Target
}

var (
	sharedOnce sync.Once
	shared     *Fixture
)

// Shared returns the process-wide fixture.
func Shared() *Fixture {
	sharedOnce.Do(func() { shared = NewFixture() })
	return shared
}

// NewFixture builds an independent fixture (tests that mutate state use
// their own).
func NewFixture() *Fixture {
	space := hw.DefaultSpace()
	free := sim.NewEngine(space)
	free.Cost = sim.CostModel{}
	return &Fixture{
		Space:     space,
		Engine:    sim.NewEngine(space),
		Free:      free,
		Apps:      workload.Benchmarks(),
		baselines: map[string]baselineEntry{},
		oracles:   map[string]*predict.Oracle{},
	}
}

// Baseline returns the Turbo Core run and target for app (cached).
func (f *Fixture) Baseline(app *workload.App) (*sim.Result, sim.Target) {
	f.baseMu.Lock()
	defer f.baseMu.Unlock()
	if e, ok := f.baselines[app.Name]; ok {
		return e.res, e.target
	}
	res, target, err := f.Engine.Baseline(app)
	if err != nil {
		panic(fmt.Sprintf("experiments: baseline %s: %v", app.Name, err))
	}
	f.baselines[app.Name] = baselineEntry{res, target}
	return res, target
}

// Oracle returns a perfect predictor for app (cached).
func (f *Fixture) Oracle(app *workload.App) *predict.Oracle {
	f.oracleMu.Lock()
	defer f.oracleMu.Unlock()
	if o, ok := f.oracles[app.Name]; ok {
		return o
	}
	o := predict.NewOracle()
	for _, k := range app.Kernels {
		o.Register(k)
	}
	f.oracles[app.Name] = o
	return o
}

// RF returns the offline-trained Random Forest predictor, training it on
// first use (seeded, deterministic).
func (f *Fixture) RF() (*predict.RandomForest, error) {
	f.rfOnce.Do(func() {
		opt := predict.DefaultTrainOptions(rfSeed)
		f.rf, f.rfErr = predict.TrainRandomForest(opt)
	})
	return f.rf, f.rfErr
}

// App returns the named benchmark from the fixture.
func (f *Fixture) App(name string) *workload.App {
	for i := range f.Apps {
		if f.Apps[i].Name == name {
			return &f.Apps[i]
		}
	}
	panic(fmt.Sprintf("experiments: unknown app %s", name))
}

// Runner regenerates one table or figure.
type Runner struct {
	ID    string
	Title string
	Run   func(*Fixture) (*Table, error)
}

var registry []Runner

func register(id, title string, run func(*Fixture) (*Table, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// Runners returns all registered experiment runners sorted by their
// registration IDs' paper order.
func Runners() []Runner {
	out := append([]Runner(nil), registry...)
	sort.SliceStable(out, func(a, b int) bool { return order(out[a].ID) < order(out[b].ID) })
	return out
}

// order maps experiment IDs to paper presentation order.
func order(id string) int {
	idx := []string{
		"tableI", "fig2", "fig3", "tableII", "fig4", "tableIV",
		"fig8", "fig9", "fig10", "fig11", "fig12", "mape", "fig13",
		"fig14", "fig15", "horizonablation",
		"searchablation", "orderablation", "tosolver",
		"overheadhiding", "backtrack", "fullspace", "predictorablation",
		"transitionablation", "thermalstress", "governors", "population",
		"featureimportance",
	}
	for i, s := range idx {
		if s == id {
			return i
		}
	}
	return len(idx)
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
