package mpcdvfs_test

import (
	"fmt"

	"mpcdvfs"
)

// ExampleBenchmarkByName looks up a Table IV benchmark and inspects its
// execution pattern.
func ExampleBenchmarkByName() {
	app, err := mpcdvfs.BenchmarkByName("Spmv")
	if err != nil {
		panic(err)
	}
	fmt.Println(app.Name, app.Suite, app.Pattern, app.Len())
	// Output: Spmv SHOC A10B10C10 30
}

// ExampleDefaultSpace shows the configuration space the paper captured.
func ExampleDefaultSpace() {
	s := mpcdvfs.DefaultSpace()
	fmt.Println(s.Size(), "configurations")
	fmt.Println("fail-safe:", mpcdvfs.FailSafe())
	// Output:
	// 336 configurations
	// fail-safe: [P7, NB2, DPM4, 8 CUs]
}

// ExampleSystem_Baseline runs Turbo Core to establish the Eq. 1
// performance target.
func ExampleSystem_Baseline() {
	sys := mpcdvfs.NewSystem()
	app, _ := mpcdvfs.BenchmarkByName("NBody")
	base, target, err := sys.Baseline(&app)
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline runs %d kernels; target throughput positive: %v\n",
		len(base.Records), target.Throughput() > 0)
	// Output: baseline runs 10 kernels; target throughput positive: true
}

// ExampleSystem_NewMPC shows the profile-then-optimize lifecycle: the
// first invocation runs PPK while the pattern extractor learns, the
// second runs true MPC and saves energy without missing the target.
func ExampleSystem_NewMPC() {
	sys := mpcdvfs.NewSystem()
	app, _ := mpcdvfs.BenchmarkByName("kmeans")
	base, target, _ := sys.Baseline(&app)

	mpc := sys.NewMPC(sys.NewOracle(&app))
	runs, err := sys.RunRepeated(&app, mpc, target, 2)
	if err != nil {
		panic(err)
	}
	c := mpcdvfs.Compare(runs[1], base)
	fmt.Printf("steady state saves energy: %v, speedup above 0.95: %v\n",
		c.EnergySavingsPct > 0, c.Speedup > 0.95)
	// Output: steady state saves energy: true, speedup above 0.95: true
}

// ExampleNewComputeBoundKernel builds a custom application from the
// Fig. 2 kernel archetypes.
func ExampleNewComputeBoundKernel() {
	k := mpcdvfs.NewComputeBoundKernel("myKernel", 1.0)
	app := mpcdvfs.App{
		Name:    "custom",
		Pattern: "A3",
		Kernels: []mpcdvfs.Kernel{k, k, k},
	}
	fmt.Println(app.Len(), "invocations of", app.Kernels[0].Name())
	// Output: 3 invocations of myKernel
}
