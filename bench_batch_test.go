// Paired benchmarks for cross-session decision batching: one fused
// mega-batch evaluation over N queued sweep requests versus the N
// independent sweeps it replaces, and the end-to-end coordinator
// round-trip under concurrent submitters.
//
// Regenerate with:
//
//	go test . -run '^$' -bench '^BenchmarkBatch' -benchmem -cpu 1,2
//
// Each op processes the same N sweeps in both variants, so ns/op is
// directly comparable at a given N. On one CPU the fused path wins on
// shared per-epoch work (one key matrix walk per tree block instead of
// N pool round-trips); with spare cores it additionally frees the
// submitting sessions to overlap their non-search work with the one
// evaluating goroutine.
package mpcdvfs_test

import (
	"strconv"
	"testing"
	"time"

	"mpcdvfs/internal/batch"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
)

// batchCounterSets returns n counter sets cycling over distinct kernel
// archetypes, the coordinator's steady-state diversity.
func batchCounterSets(n int) []struct {
	cs []float64
	k  kernel.Kernel
} {
	ks := []kernel.Kernel{
		kernel.NewComputeBound("cb", 1), kernel.NewMemoryBound("mb", 1),
		kernel.NewPeak("pk", 1), kernel.NewBalanced("ba", 1),
	}
	out := make([]struct {
		cs []float64
		k  kernel.Kernel
	}, n)
	for i := range out {
		out[i].k = ks[i%len(ks)]
	}
	return out
}

var batchNs = []int{1, 4, 16, 64}

// BenchmarkBatchFusedSweeps evaluates N queued requests as one fused
// mega-batch through a FusedPlan — the coordinator's epoch body.
func BenchmarkBatchFusedSweeps(b *testing.B) {
	m := benchServeRF(b)
	space := hw.DefaultSpace()
	for _, n := range batchNs {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			reqs := batchCounterSets(n)
			plan := predict.NewFusedPlan(m, space, n)
			if plan == nil {
				b.Fatal("NewFusedPlan returned nil for a compiled model")
			}
			dsts := make([][]predict.Estimate, n)
			for i := range dsts {
				dsts[i] = make([]predict.Estimate, space.Size())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := range reqs {
					plan.Stage(s, reqs[s].k.Counters())
				}
				plan.Execute(n, dsts)
			}
		})
	}
}

// BenchmarkBatchSerialSweeps is the baseline the fused epoch replaces:
// the same N requests as N independent batched sweeps.
func BenchmarkBatchSerialSweeps(b *testing.B) {
	m := benchServeRF(b)
	space := hw.DefaultSpace()
	for _, n := range batchNs {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			reqs := batchCounterSets(n)
			dsts := make([][]predict.Estimate, n)
			for i := range dsts {
				dsts[i] = make([]predict.Estimate, space.Size())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := range reqs {
					if !m.PredictSpace(reqs[s].k.Counters(), space, dsts[s]) {
						b.Fatal("PredictSpace returned false on a compiled model")
					}
				}
			}
		})
	}
}

// BenchmarkBatchCoordinatorRoundTrip measures the full session-side
// path — submit, park, epoch, scatter, unpark — under concurrent
// submitters, against which the in-process sweep above is the floor.
func BenchmarkBatchCoordinatorRoundTrip(b *testing.B) {
	m := benchServeRF(b)
	space := hw.DefaultSpace()
	c := batch.New(batch.Config{Window: 50 * time.Microsecond})
	defer c.Stop()
	cs := kernel.NewBalanced("ba", 1).Counters()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rs := predict.NewRemoteSweep(nil, m, c.Submit)
		dst := make([]predict.Estimate, space.Size())
		for pb.Next() {
			if !rs.PredictSpace(cs, space, dst) {
				// Saturated: the optimizer's direct fallback.
				if !m.PredictSpace(cs, space, dst) {
					b.Fatal("direct fallback returned false")
				}
			}
		}
	})
}
