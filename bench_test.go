// Benchmarks regenerating every table and figure of the paper's
// evaluation (one per experiment runner), plus micro-benchmarks of the
// core mechanisms. Run with:
//
//	go test -bench=. -benchmem
//
// The heavy shared state (Turbo Core baselines, the offline-trained
// Random Forest) is built once per process by the experiments fixture.
package mpcdvfs_test

import (
	"math"
	"math/rand"
	"testing"

	"mpcdvfs/internal/core"
	"mpcdvfs/internal/counters"
	"mpcdvfs/internal/experiments"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/metrics"
	"mpcdvfs/internal/obs"
	"mpcdvfs/internal/pattern"
	"mpcdvfs/internal/policy"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/workload"
)

// benchExperiment reruns one registered experiment per iteration; the
// first (untimed) run warms the fixture caches.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	f := experiments.Shared()
	if _, err := r.Run(f); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(f); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure (the regenerators themselves).

func BenchmarkTableIDVFSStates(b *testing.B)             { benchExperiment(b, "tableI") }
func BenchmarkFig2KernelCharacterization(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3ThroughputTraces(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkTableIIExecutionPatterns(b *testing.B)     { benchExperiment(b, "tableII") }
func BenchmarkTableIVBenchmarkSuite(b *testing.B)        { benchExperiment(b, "tableIV") }
func BenchmarkFig4LimitStudy(b *testing.B)               { benchExperiment(b, "fig4") }
func BenchmarkFig8MPCvsTurboCore(b *testing.B)           { benchExperiment(b, "fig8") }
func BenchmarkFig9MPCvsPPK(b *testing.B)                 { benchExperiment(b, "fig9") }
func BenchmarkFig10GPUEnergySavings(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11Amortization(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12MPCvsTheoreticalLimit(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkMAPEPredictionAccuracy(b *testing.B)       { benchExperiment(b, "mape") }
func BenchmarkFig13PredictionErrorAblation(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14MPCOverheads(b *testing.B)            { benchExperiment(b, "fig14") }
func BenchmarkFig15AdaptiveHorizon(b *testing.B)         { benchExperiment(b, "fig15") }
func BenchmarkHorizonAblation(b *testing.B)              { benchExperiment(b, "horizonablation") }
func BenchmarkSearchAblation(b *testing.B)               { benchExperiment(b, "searchablation") }
func BenchmarkOrderAblation(b *testing.B)                { benchExperiment(b, "orderablation") }
func BenchmarkTOSolverAblation(b *testing.B)             { benchExperiment(b, "tosolver") }
func BenchmarkOverheadHidingExtension(b *testing.B)      { benchExperiment(b, "overheadhiding") }
func BenchmarkBacktrackingMPC(b *testing.B)              { benchExperiment(b, "backtrack") }
func BenchmarkFullSpaceExtension(b *testing.B)           { benchExperiment(b, "fullspace") }
func BenchmarkPredictorAblation(b *testing.B)            { benchExperiment(b, "predictorablation") }
func BenchmarkTransitionAblation(b *testing.B)           { benchExperiment(b, "transitionablation") }
func BenchmarkThermalStress(b *testing.B)                { benchExperiment(b, "thermalstress") }
func BenchmarkGovernorComparison(b *testing.B)           { benchExperiment(b, "governors") }
func BenchmarkPopulationRobustness(b *testing.B)         { benchExperiment(b, "population") }

// Micro-benchmarks of the mechanisms behind those numbers.

// BenchmarkKernelEvaluate measures one ground-truth model evaluation —
// the simulated equivalent of a hardware measurement sample.
func BenchmarkKernelEvaluate(b *testing.B) {
	k := kernel.NewBalanced("bench", 1)
	cfg := hw.FailSafe()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.Evaluate(cfg)
	}
}

// BenchmarkHillClimb measures one greedy per-kernel configuration search
// (the paper's ~19-evaluation search).
func BenchmarkHillClimb(b *testing.B) {
	k := kernel.NewBalanced("bench", 1)
	o := predict.NewOracle()
	o.Register(k)
	opt := core.NewOptimizer(o, hw.DefaultSpace())
	cs := k.Counters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = opt.HillClimb(cs, math.Inf(1))
	}
}

// BenchmarkExhaustiveSearch measures the O(M)=336-evaluation sweep the
// greedy search replaces.
func BenchmarkExhaustiveSearch(b *testing.B) {
	k := kernel.NewBalanced("bench", 1)
	o := predict.NewOracle()
	o.Register(k)
	opt := core.NewOptimizer(o, hw.DefaultSpace())
	cs := k.Counters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = opt.ExhaustiveSearch(cs, math.Inf(1))
	}
}

// BenchmarkRFPredict measures one Random Forest time/power prediction —
// the unit the overhead cost model charges.
func BenchmarkRFPredict(b *testing.B) {
	rf, err := experiments.Shared().RF()
	if err != nil {
		b.Fatal(err)
	}
	cs := kernel.NewBalanced("bench", 1).Counters()
	cfg := hw.FailSafe()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rf.PredictKernel(cs, cfg)
	}
}

// BenchmarkMPCDecision measures one full steady-state MPC run of Spmv —
// 30 receding-horizon decisions with pattern lookup and tracker updates.
func BenchmarkMPCDecision(b *testing.B) {
	f := experiments.Shared()
	app := f.App("Spmv")
	_, target := f.Baseline(app)
	oracle := f.Oracle(app)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := policy.NewMPC(oracle, f.Space)
		if _, err := f.Engine.RunRepeated(app, m, target, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// benchObservedMPC is BenchmarkMPCDecision with an observer installed
// on a private engine (identical construction to the fixture's), so the
// three variants below isolate instrumentation cost: nil and Nop must be
// indistinguishable from the uninstrumented run (<5% is the budget), and
// the metrics observer shows the full price of live counters.
func benchObservedMPC(b *testing.B, o obs.Observer) {
	b.Helper()
	f := experiments.Shared()
	app := f.App("Spmv")
	_, target := f.Baseline(app)
	oracle := f.Oracle(app)
	eng := sim.NewEngine(f.Space)
	eng.Obs = o
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := policy.NewMPC(oracle, f.Space)
		if _, err := eng.RunRepeated(app, m, target, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPCDecisionNilObserver(b *testing.B) { benchObservedMPC(b, nil) }

func BenchmarkMPCDecisionNopObserver(b *testing.B) { benchObservedMPC(b, obs.Nop{}) }

func BenchmarkMPCDecisionMetricsObserver(b *testing.B) {
	benchObservedMPC(b, obs.NewMetrics(metrics.New()))
}

// BenchmarkTurboCoreRun measures the baseline controller for scale.
func BenchmarkTurboCoreRun(b *testing.B) {
	f := experiments.Shared()
	app := f.App("Spmv")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Engine.Baseline(app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTOKnapsackDP measures the exact multiple-choice-knapsack plan
// for a 30-kernel app over 336 configurations.
func BenchmarkTOKnapsackDP(b *testing.B) {
	f := experiments.Shared()
	app := f.App("Spmv")
	_, target := f.Baseline(app)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		to := policy.NewTheoreticallyOptimal(app, f.Space)
		if _, err := f.Free.Run(app, to, target, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTOLagrangian measures the relaxation-based alternative.
func BenchmarkTOLagrangian(b *testing.B) {
	f := experiments.Shared()
	app := f.App("Spmv")
	_, target := f.Baseline(app)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		to := policy.NewTheoreticallyOptimal(app, f.Space)
		to.UseLagrangian = true
		if _, err := f.Free.Run(app, to, target, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatternExtractor measures signature computation plus pattern
// bookkeeping per observed kernel.
func BenchmarkPatternExtractor(b *testing.B) {
	app, _ := workload.ByName("hybridsort")
	recs := make([]counters.Record, app.Len())
	for i, k := range app.Kernels {
		m := k.Evaluate(hw.FailSafe())
		recs[i] = counters.Record{Counters: k.Counters(), TimeMS: m.TimeMS, PowerW: m.GPUW + m.NBW}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pattern.New()
		e.BeginRun()
		for _, r := range recs {
			e.Observe(r)
		}
		for j := 0; j < app.Len(); j++ {
			_, _ = e.Expect(j)
		}
	}
}

// BenchmarkSignature measures the log-binned signature of one counter
// set.
func BenchmarkSignature(b *testing.B) {
	cs := kernel.NewBalanced("bench", 1).Counters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = counters.SignatureOf(cs)
	}
}

// BenchmarkWorkloadGeneration measures synthesis of a random irregular
// application.
func BenchmarkWorkloadGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = workload.RandomApp("bench", rng, 6, 40)
	}
}

// BenchmarkEngineRunFailSafe measures the simulation engine itself with
// a trivial policy, isolating engine overhead from policy cost.
func BenchmarkEngineRunFailSafe(b *testing.B) {
	f := experiments.Shared()
	app := f.App("hybridsort")
	_, target := f.Baseline(app)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Engine.Run(app, sim.NewTurboCore(), target, true); err != nil {
			b.Fatal(err)
		}
	}
}
