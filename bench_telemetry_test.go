// Telemetry overhead benchmarks (the BENCH_telemetry.json inputs).
// The contract mirrors BENCH_obs.json's observer budget: a nil or
// disabled trace context on the MPC decision path must be
// indistinguishable from the untraced engine, and full 100% sampling
// must stay cheap enough to leave on in production.
//
//	go test -run '^$' -bench BenchmarkTelemetry -benchmem
package mpcdvfs_test

import (
	"testing"

	"mpcdvfs/internal/experiments"
	"mpcdvfs/internal/policy"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/telemetry"
)

// benchTracedMPC is benchObservedMPC's telemetry twin: one full
// steady-state MPC run of Spmv (30 receding-horizon decisions ×2 runs)
// on a private engine with the given trace context attached.
func benchTracedMPC(b *testing.B, tc *telemetry.Context) {
	b.Helper()
	f := experiments.Shared()
	app := f.App("Spmv")
	_, target := f.Baseline(app)
	oracle := f.Oracle(app)
	eng := sim.NewEngine(f.Space)
	eng.Trace = tc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := policy.NewMPC(oracle, f.Space)
		if _, err := eng.RunRepeated(app, m, target, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryMPCDecisionNilContext is the baseline: no trace
// context at all (the default engine state).
func BenchmarkTelemetryMPCDecisionNilContext(b *testing.B) { benchTracedMPC(b, nil) }

// BenchmarkTelemetryMPCDecisionDisabledTracer attaches a context from a
// sampling-disabled tracer: every span call runs its fast path.
func BenchmarkTelemetryMPCDecisionDisabledTracer(b *testing.B) {
	benchTracedMPC(b, telemetry.NewTracer(0, 0).NewContext("bench"))
}

// BenchmarkTelemetryMPCDecisionSampledEvery traces every decision into
// the ring — the worst-case live-tracing price.
func BenchmarkTelemetryMPCDecisionSampledEvery(b *testing.B) {
	benchTracedMPC(b, telemetry.NewTracer(1<<15, 1).NewContext("bench"))
}

// BenchmarkTelemetryMPCDecisionSampled1In8 is the recommended
// production setting: 1-in-8 sampling amortizes the span cost while
// keeping /debug/trace representative.
func BenchmarkTelemetryMPCDecisionSampled1In8(b *testing.B) {
	benchTracedMPC(b, telemetry.NewTracer(1<<15, 8).NewContext("bench"))
}

// BenchmarkTelemetryScoreboardAndAccounting prices the non-span half of
// the hub on its own: one scoreboard observation plus one ledger
// decision+observation pair per iteration — what every served decision
// with ground-truth feedback pays regardless of trace sampling.
func BenchmarkTelemetryScoreboardAndAccounting(b *testing.B) {
	hub := telemetry.NewHub(telemetry.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Scoreboard.Observe(1, "Spmv", 10, 10.4, 40, 41)
		hub.Accounting.RecordDecision("bench", "", 4, 0.02)
		hub.Accounting.RecordObservation("bench", "[P1,NB0,DPM2,6CU]", 120, 124)
	}
}
