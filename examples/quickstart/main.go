// Quickstart: run one benchmark under MPC with a perfect predictor and
// compare it against AMD Turbo Core.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpcdvfs"
)

func main() {
	// The system bundles the paper's 336-point configuration space
	// (Table I) with the simulation engine and overhead cost model.
	sys := mpcdvfs.NewSystem()

	// kmeans (Rodinia): one low-throughput swap kernel, then twenty
	// iterations of the high-throughput kmeans kernel — the "low-to-high
	// transition" that defeats history-based power managers (Fig. 3).
	app, err := mpcdvfs.BenchmarkByName("kmeans")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s): pattern %s, %d kernel invocations\n\n",
		app.Name, app.Suite, app.Pattern, app.Len())

	// Turbo Core defines the performance target: MPC must save energy
	// without running slower than this baseline.
	base, target, err := sys.Baseline(&app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Turbo Core baseline: %.2f ms, %.1f mJ\n", base.TotalTimeMS(), base.TotalEnergyMJ())

	// MPC needs a performance/power predictor; the oracle gives perfect
	// knowledge (swap in mpcdvfs.TrainRandomForest for the deployed,
	// imperfect model).
	mpc := sys.NewMPC(sys.NewOracle(&app))

	// The first invocation is the profiling run (PPK while the pattern
	// extractor learns the kernel sequence); the second runs real MPC.
	runs, err := sys.RunRepeated(&app, mpc, target, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range runs {
		c := mpcdvfs.Compare(r, base)
		fmt.Printf("run %d: %.2f ms, %.1f mJ  ->  %.1f%% energy savings, %.3fx speedup\n",
			i+1, r.TotalTimeMS(), r.TotalEnergyMJ(), c.EnergySavingsPct, c.Speedup)
	}

	// Show what MPC actually decided in steady state.
	fmt.Println("\nsteady-state decisions:")
	for _, rec := range runs[1].Records[:5] {
		fmt.Printf("  k%02d %-12s -> %s\n", rec.Index, rec.Kernel, rec.Config)
	}
	fmt.Println("  ...")
}
