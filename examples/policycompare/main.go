// Policycompare: run every Table IV benchmark under PPK, Theoretically
// Optimal and MPC (all with perfect prediction, as in the paper's limit
// studies) and print the energy/performance comparison against Turbo
// Core — the shape of Figs. 4 and 12.
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"

	"mpcdvfs"
)

func main() {
	sys := mpcdvfs.NewSystem()

	fmt.Printf("%-14s  %22s  %22s  %22s\n", "benchmark",
		"PPK (save%, spd)", "MPC (save%, spd)", "TO (save%, spd)")

	for _, app := range mpcdvfs.Benchmarks() {
		app := app
		base, target, err := sys.Baseline(&app)
		if err != nil {
			log.Fatal(err)
		}
		oracle := sys.NewOracle(&app)

		// PPK: history-based, no future knowledge.
		ppkRes, err := sys.Run(&app, sys.NewPPK(oracle), target, true)
		if err != nil {
			log.Fatal(err)
		}

		// MPC: profiling run, then steady state.
		mpcRuns, err := sys.RunRepeated(&app, sys.NewMPC(oracle), target, 2)
		if err != nil {
			log.Fatal(err)
		}

		// Theoretically Optimal: global knapsack over perfect knowledge.
		toRes, err := sys.Run(&app, sys.NewTheoreticallyOptimal(&app), target, true)
		if err != nil {
			log.Fatal(err)
		}

		p := mpcdvfs.Compare(ppkRes, base)
		m := mpcdvfs.Compare(mpcRuns[1], base)
		to := mpcdvfs.Compare(toRes, base)
		fmt.Printf("%-14s  %10.1f%%  %8.3fx  %10.1f%%  %8.3fx  %10.1f%%  %8.3fx\n",
			app.Name,
			p.EnergySavingsPct, p.Speedup,
			m.EnergySavingsPct, m.Speedup,
			to.EnergySavingsPct, to.Speedup)
	}

	fmt.Println("\nPPK loses performance on irregular apps; MPC tracks TO (paper Figs. 4, 12).")
}
