// Thermal: put the benchmark suite's long-kernel apps in a thermally
// tight package and watch energy efficiency turn into performance — the
// pressure that motivated the paper's APU choice ("due to its more
// stringent thermal constraints, it more aggressively manages power").
//
//	go run ./examples/thermal
package main

import (
	"fmt"
	"log"

	"mpcdvfs"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/sim"
	"mpcdvfs/internal/thermal"
	"mpcdvfs/internal/workload"
)

func main() {
	// A small-form-factor package: 1.0 °C/W junction-to-ambient, fast RC.
	tp := thermal.DefaultParams()
	tp.ResistanceCW = 1.0
	tp.TimeConstMS = 120

	hot := sim.NewEngine(hw.DefaultSpace())
	hot.Thermal = &tp
	cold := sim.NewEngine(hw.DefaultSpace())

	fmt.Printf("package: %.2f C/W, throttles at %.0f C\n\n", tp.ResistanceCW, tp.ThrottleC)
	fmt.Printf("%-10s  %-11s  %9s  %12s  %9s\n", "app", "policy", "max temp", "throttled ms", "speedup")

	for _, name := range []string{"NBody", "lbm", "XSBench"} {
		base, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		// Sustain the load past the RC constant: three consecutive runs'
		// worth of kernels.
		app := base
		app.Kernels = nil
		for r := 0; r < 3; r++ {
			app.Kernels = append(app.Kernels, base.Kernels...)
		}

		coldTC, target, err := cold.Baseline(&app)
		if err != nil {
			log.Fatal(err)
		}

		hotTC, _, err := hot.Baseline(&app)
		if err != nil {
			log.Fatal(err)
		}
		sys := mpcdvfs.NewSystemWithSpace(hw.DefaultSpace())
		oracle := sys.NewOracle(&app)
		mpc := sys.NewMPC(oracle)
		runs, err := hot.RunRepeated(&app, mpc, target, 2)
		if err != nil {
			log.Fatal(err)
		}
		hotMPC := runs[1]

		print := func(policy string, r *sim.Result) {
			fmt.Printf("%-10s  %-11s  %7.1f C  %10.2f ms  %8.3fx\n",
				name, policy, r.MaxTempC(), r.ThrottledMS(),
				coldTC.TotalTimeMS()/r.TotalTimeMS())
		}
		print("turbo-core", hotTC)
		print("mpc", hotMPC)
	}
	fmt.Println("\nTurbo Core crosses the throttle point and pays in time;")
	fmt.Println("MPC's lower power keeps the die cool — its energy savings ARE its cooling headroom.")
}
