// Irregular: build a custom irregular application out of the kernel
// archetypes, train the Random Forest predictor, and watch MPC amortize
// its profiling losses over repeated executions (the Fig. 11 story) on a
// workload that ships with neither the library nor the paper.
//
//	go run ./examples/irregular
package main

import (
	"fmt"
	"log"

	"mpcdvfs"
)

func main() {
	// A graph-analytics-style app: a memory-bound build phase, then
	// frontier iterations whose work swells and shrinks (unscalable
	// kernels varying with input), closed by a compute-bound scoring
	// pass. No fixed pattern — the hard case for history-based schemes.
	build := mpcdvfs.NewMemoryBoundKernel("build_csr", 1.2)
	frontier := mpcdvfs.NewUnscalableKernel("expand_frontier", 0.6)
	score := mpcdvfs.NewComputeBoundKernel("score_vertices", 1.4)

	app := mpcdvfs.App{
		Name: "graphsweep", Suite: "custom", Pattern: "AB*C2",
		Kernels: []mpcdvfs.Kernel{
			build,
			frontier.WithInput(0.4),
			frontier.WithInput(1.1),
			frontier.WithInput(3.0),
			frontier.WithInput(5.5),
			frontier.WithInput(3.2),
			frontier.WithInput(1.0),
			frontier.WithInput(0.3),
			score,
			score,
		},
	}

	sys := mpcdvfs.NewSystem()
	base, target, err := sys.Baseline(&app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom app %q: %d kernels, Turbo Core %.2f ms / %.1f mJ\n\n",
		app.Name, app.Len(), base.TotalTimeMS(), base.TotalEnergyMJ())

	// The deployed setup: an offline-trained, imperfect Random Forest.
	fmt.Println("training Random Forest predictor (offline phase)...")
	rf, err := mpcdvfs.TrainRandomForest(mpcdvfs.DefaultTrainOptions(42))
	if err != nil {
		log.Fatal(err)
	}

	mpc := sys.NewMPC(rf)
	runs, err := sys.RunRepeated(&app, mpc, target, 6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\namortization of the profiling run:")
	cumE, cumT := 0.0, 0.0
	for i, r := range runs {
		cumE += r.TotalEnergyMJ()
		cumT += r.TotalTimeMS()
		baseE := base.TotalEnergyMJ() * float64(i+1)
		baseT := base.TotalTimeMS() * float64(i+1)
		fmt.Printf("after run %d: cumulative %.1f%% energy savings, %.3fx speedup vs Turbo Core\n",
			i+1, 100*(1-cumE/baseE), baseT/cumT)
	}

	c := mpcdvfs.Compare(runs[len(runs)-1], base)
	fmt.Printf("\nsteady state: %.1f%% energy savings at %.3fx speedup\n",
		c.EnergySavingsPct, c.Speedup)
	if frac, ok := mpc.AvgHorizonFrac(); ok {
		fmt.Printf("average adaptive horizon: %.0f%% of the %d kernels\n", 100*frac, app.Len())
	}
	fmt.Printf("pattern extractor storage: %d bytes (80 per dissimilar kernel)\n", mpc.StorageBytes())
}
