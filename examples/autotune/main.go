// Autotune: sweep the adaptive horizon's performance-loss bound α and
// the predictor quality to see how the MPC design choices trade energy
// against performance — the §VI-D/§VI-E design space in one run.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"mpcdvfs"
)

func main() {
	sys := mpcdvfs.NewSystem()
	app, err := mpcdvfs.BenchmarkByName("hybridsort") // short kernels: overheads matter
	if err != nil {
		log.Fatal(err)
	}
	base, target, err := sys.Baseline(&app)
	if err != nil {
		log.Fatal(err)
	}
	oracle := sys.NewOracle(&app)

	fmt.Printf("%s: sweeping the adaptive horizon bound alpha\n", app.Name)
	fmt.Printf("%8s  %12s  %10s  %12s\n", "alpha", "save%", "speedup", "overhead ms")
	for _, alpha := range []float64{0.01, 0.02, 0.05, 0.10, 0.20} {
		mpc := sys.NewMPC(oracle, mpcdvfs.WithAlpha(alpha))
		runs, err := sys.RunRepeated(&app, mpc, target, 2)
		if err != nil {
			log.Fatal(err)
		}
		c := mpcdvfs.Compare(runs[1], base)
		fmt.Printf("%8.2f  %11.1f%%  %9.3fx  %12.3f\n",
			alpha, c.EnergySavingsPct, c.Speedup, runs[1].OverheadMS())
	}

	fmt.Println("\npredictor quality (full horizon, no overhead charged):")
	free := mpcdvfs.NewSystem()
	free.SetCostModel(mpcdvfs.CostModel{})
	fmt.Printf("%16s  %12s  %10s\n", "model", "save%", "speedup")
	for _, tc := range []struct {
		name     string
		timeErr  float64
		powerErr float64
	}{
		{"perfect", 0, 0},
		{"err 5%/5%", 0.05, 0.05},
		{"err 15%/10%", 0.15, 0.10},
		{"err 40%/30%", 0.40, 0.30},
	} {
		model := mpcdvfs.NewErrorModel(free.NewOracle(&app), tc.timeErr, tc.powerErr, 7)
		mpc := free.NewMPC(model, mpcdvfs.WithFullHorizon())
		runs, err := free.RunRepeated(&app, mpc, target, 2)
		if err != nil {
			log.Fatal(err)
		}
		c := mpcdvfs.Compare(runs[1], base)
		fmt.Printf("%16s  %11.1f%%  %9.3fx\n", tc.name, c.EnergySavingsPct, c.Speedup)
	}
	fmt.Println("\nMPC's feedback keeps results stable until errors dwarf the signal (paper Fig. 13).")
}
