package mpcdvfs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mpcdvfs"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/rf"
	"mpcdvfs/internal/telemetry"
	"mpcdvfs/internal/trace"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden (model and expected replay)")

// goldenRecord is one kernel decision in the golden replay. Floats are
// stored as %.6g strings so the file survives encoding round trips and
// diffs readably; the simulation itself is fully deterministic, so
// equality at 6 significant digits only ever breaks when behaviour
// actually changes.
type goldenRecord struct {
	Kernel   string `json:"kernel"`
	Config   string `json:"config"`
	Evals    int    `json:"evals"`
	TimeMS   string `json:"time_ms"`
	EnergyMJ string `json:"energy_mj"`
}

type goldenRun struct {
	Records       []goldenRecord `json:"records"`
	TotalTimeMS   string         `json:"total_time_ms"`
	TotalEnergyMJ string         `json:"total_energy_mj"`
}

type goldenReplay struct {
	App  string      `json:"app"`
	Runs []goldenRun `json:"runs"`
}

func g6(v float64) string { return fmt.Sprintf("%.6g", v) }

func snapshot(app string, results []*mpcdvfs.Result) goldenReplay {
	gr := goldenReplay{App: app}
	for _, res := range results {
		run := goldenRun{
			TotalTimeMS:   g6(res.TotalTimeMS()),
			TotalEnergyMJ: g6(res.TotalEnergyMJ()),
		}
		for _, rec := range res.Records {
			run.Records = append(run.Records, goldenRecord{
				Kernel:   rec.Kernel,
				Config:   rec.Config.String(),
				Evals:    rec.Evals,
				TimeMS:   g6(rec.TimeMS),
				EnergyMJ: g6(rec.GPUEnergyMJ + rec.CPUEnergyMJ),
			})
		}
		gr.Runs = append(gr.Runs, run)
	}
	return gr
}

// TestGoldenMPCReplay replays the committed model through the full MPC
// pipeline (baseline, profiling run, steady-state run) and compares
// every decision against testdata/golden/golden.json. Any behavioural
// change to the predictor, optimizer, tracker, horizon or engine shows
// up here as a readable diff; refresh intentionally with
//
//	go test -run TestGoldenMPCReplay -update
func TestGoldenMPCReplay(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	modelPath := filepath.Join(dir, "model.bin")
	goldenPath := filepath.Join(dir, "golden.json")

	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		opt := mpcdvfs.DefaultTrainOptions(20170204)
		opt.NumKernels = 12
		opt.Forest = rf.Config{
			NumTrees: 8, MaxDepth: 8, MinLeaf: 2, NumThresh: 12,
			SampleFrac: 1.0, Seed: 20170204,
		}
		m, err := predict.TrainRandomForest(opt)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(modelPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := predict.SaveModel(f, m); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	mf, err := os.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	model, err := predict.LoadModel(mf)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}

	const appName = "Spmv"
	sys := mpcdvfs.NewSystem()
	app, err := mpcdvfs.BenchmarkByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	_, target, err := sys.Baseline(&app)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.RunRepeated(&app, sys.NewMPC(model), target, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := snapshot(appName, results)

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden files regenerated under %s", dir)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want goldenReplay
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	if got.App != want.App || len(got.Runs) != len(want.Runs) {
		t.Fatalf("replay shape changed: app %q runs %d, want %q / %d",
			got.App, len(got.Runs), want.App, len(want.Runs))
	}
	for r := range want.Runs {
		w, g := want.Runs[r], got.Runs[r]
		if len(g.Records) != len(w.Records) {
			t.Fatalf("run %d: %d records, want %d", r, len(g.Records), len(w.Records))
		}
		for i := range w.Records {
			if g.Records[i] != w.Records[i] {
				t.Errorf("run %d kernel %d drifted:\n got %+v\nwant %+v (refresh with -update if intended)",
					r, i, g.Records[i], w.Records[i])
			}
		}
		if g.TotalTimeMS != w.TotalTimeMS || g.TotalEnergyMJ != w.TotalEnergyMJ {
			t.Errorf("run %d totals drifted: %s ms / %s mJ, want %s / %s",
				r, g.TotalTimeMS, g.TotalEnergyMJ, w.TotalTimeMS, w.TotalEnergyMJ)
		}
	}
}

// TestGoldenCompiledVsTreeWalk replays the committed model through the
// full MPC pipeline twice — once on the default compiled-forest fast
// path and once with compiled inference disabled (the -no-compiled-rf
// escape hatch) — and requires the two JSONL traces to be
// byte-identical. This is the end-to-end statement of the compiled
// contract: which inference engine runs is unobservable in any output.
func TestGoldenCompiledVsTreeWalk(t *testing.T) {
	modelPath := filepath.Join("testdata", "golden", "model.bin")

	replay := func(compiled bool) []byte {
		t.Helper()
		mf, err := os.Open(modelPath)
		if err != nil {
			t.Fatalf("%v (regenerate with go test -run TestGoldenMPCReplay -update)", err)
		}
		model, err := predict.LoadModel(mf)
		mf.Close()
		if err != nil {
			t.Fatal(err)
		}
		model.SetCompiled(compiled)

		sys := mpcdvfs.NewSystem()
		app, err := mpcdvfs.BenchmarkByName("Spmv")
		if err != nil {
			t.Fatal(err)
		}
		_, target, err := sys.Baseline(&app)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sys.RunRepeated(&app, sys.NewMPC(model), target, 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, res := range results {
			if err := trace.WriteJSONL(&buf, res); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}

	fast := replay(true)
	ref := replay(false)
	if len(fast) == 0 {
		t.Fatal("empty replay trace")
	}
	if !bytes.Equal(fast, ref) {
		// Locate the first differing line for a readable failure.
		fl := bytes.Split(fast, []byte("\n"))
		rl := bytes.Split(ref, []byte("\n"))
		for i := 0; i < len(fl) && i < len(rl); i++ {
			if !bytes.Equal(fl[i], rl[i]) {
				t.Fatalf("JSONL traces diverge at line %d:\ncompiled:  %s\ntree-walk: %s", i+1, fl[i], rl[i])
			}
		}
		t.Fatalf("JSONL traces differ in length: compiled %d lines, tree-walk %d", len(fl), len(rl))
	}
}

// TestGoldenTracedReplayIdentical is the end-to-end statement of the
// telemetry non-perturbation contract: the full MPC pipeline replayed
// with span tracing at 100% sampling must produce a decision stream
// byte-identical to the untraced replay — the tracer observes wall
// time, never decisions. The sampled run must also actually trace:
// every decision gets a root span, and the decide path decomposes into
// the expected phases.
func TestGoldenTracedReplayIdentical(t *testing.T) {
	modelPath := filepath.Join("testdata", "golden", "model.bin")

	replay := func(tc *mpcdvfs.TraceContext) []byte {
		t.Helper()
		mf, err := os.Open(modelPath)
		if err != nil {
			t.Fatalf("%v (regenerate with go test -run TestGoldenMPCReplay -update)", err)
		}
		model, err := predict.LoadModel(mf)
		mf.Close()
		if err != nil {
			t.Fatal(err)
		}
		sys := mpcdvfs.NewSystem()
		sys.SetTraceContext(tc)
		app, err := mpcdvfs.BenchmarkByName("Spmv")
		if err != nil {
			t.Fatal(err)
		}
		_, target, err := sys.Baseline(&app)
		if err != nil {
			t.Fatal(err)
		}
		results, err := sys.RunRepeated(&app, sys.NewMPC(model), target, 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, res := range results {
			if err := trace.WriteJSONL(&buf, res); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}

	untraced := replay(nil)
	tr := telemetry.NewTracer(16384, 1)
	traced := replay(tr.NewContext("golden"))
	if len(untraced) == 0 {
		t.Fatal("empty replay trace")
	}
	if !bytes.Equal(traced, untraced) {
		ul := bytes.Split(untraced, []byte("\n"))
		tl := bytes.Split(traced, []byte("\n"))
		for i := 0; i < len(ul) && i < len(tl); i++ {
			if !bytes.Equal(ul[i], tl[i]) {
				t.Fatalf("traced replay diverges at line %d:\ntraced:   %s\nuntraced: %s", i+1, tl[i], ul[i])
			}
		}
		t.Fatalf("replays differ in length: traced %d lines, untraced %d", len(tl), len(ul))
	}

	roots, sampled := tr.Stats()
	if roots == 0 || roots != sampled {
		t.Fatalf("100%%-sampled run traced %d/%d decisions", sampled, roots)
	}
	names := map[string]int{}
	for _, rec := range tr.Snapshot(nil) {
		names[rec.Name]++
	}
	for _, want := range []string{telemetry.SpanDecide, telemetry.SpanSearch,
		telemetry.SpanFeaturize, telemetry.SpanForestEval} {
		if names[want] == 0 {
			t.Fatalf("traced replay has no %s spans (have %v)", want, names)
		}
	}
}
