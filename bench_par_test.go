// Benchmarks for the parallel hot paths: tree-parallel Random Forest
// training, batched inference, the sharded exhaustive configuration
// sweep, and the LRU prediction cache. Serial and parallel variants are
// paired so the speedup (or, on a single-CPU host, the coordination
// overhead) is a one-line benchstat comparison:
//
//	go test -run '^$' -bench '^BenchmarkPar' -benchmem
//
// Every parallel path is deterministic — these pairs measure cost only;
// the results are byte-identical by construction (see the property
// tests in internal/rf, internal/core and determinism_test.go).
package mpcdvfs_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mpcdvfs"
	"mpcdvfs/internal/core"
	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/predict"
	"mpcdvfs/internal/rf"
)

// parBenchData is the shared training set for the rf benchmarks: large
// enough that tree growth dominates goroutine coordination.
var parBenchData = sync.OnceValues(func() ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(17))
	n, d := 1500, 8
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		X[i] = x
		y[i] = math.Sin(3*x[0])*x[1] + x[2] - 0.5*x[3] + 0.05*rng.NormFloat64()
	}
	return X, y
})

func benchParTrain(b *testing.B, workers int) {
	X, y := parBenchData()
	cfg := rf.DefaultConfig(17)
	cfg.NumTrees = 16
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rf.Train(X, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParTrainSerial(b *testing.B)   { benchParTrain(b, 1) }
func BenchmarkParTrainWorkers4(b *testing.B) { benchParTrain(b, 4) }

func benchParPredictBatch(b *testing.B, workers int) {
	X, y := parBenchData()
	cfg := rf.DefaultConfig(17)
	cfg.NumTrees = 16
	f, err := rf.Train(X, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.PredictBatch(X, workers)
	}
}

func BenchmarkParPredictBatchSerial(b *testing.B)   { benchParPredictBatch(b, 1) }
func BenchmarkParPredictBatchWorkers4(b *testing.B) { benchParPredictBatch(b, 4) }

// parBenchModel is a small Random Forest predictor shared by the sweep
// and cache benchmarks — a real forest walk per evaluation, so the
// sweep's per-task cost is representative.
var parBenchModel = sync.OnceValues(func() (*predict.RandomForest, error) {
	opt := mpcdvfs.DefaultTrainOptions(17)
	opt.NumKernels = 12
	opt.Forest = rf.Config{
		NumTrees: 8, MaxDepth: 8, MinLeaf: 2, NumThresh: 12,
		SampleFrac: 1.0, Seed: 17,
	}
	return predict.TrainRandomForest(opt)
})

func benchParExhaustive(b *testing.B, workers int) {
	m, err := parBenchModel()
	if err != nil {
		b.Fatal(err)
	}
	opt := core.NewOptimizer(m, hw.DefaultSpace())
	opt.Workers = workers
	cs := kernel.NewBalanced("bench", 1).Counters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = opt.ExhaustiveSearch(cs, math.Inf(1))
	}
}

func BenchmarkParExhaustiveSerial(b *testing.B)   { benchParExhaustive(b, 1) }
func BenchmarkParExhaustiveWorkers4(b *testing.B) { benchParExhaustive(b, 4) }

// The cache pair measures a full MPC replay of Spmv with and without
// the prediction LRU; repeated horizon evaluations of the same
// (counters, config) pairs are where the cache pays off, serial or not.
func benchParMPCCache(b *testing.B, opts ...mpcdvfs.MPCOption) {
	m, err := parBenchModel()
	if err != nil {
		b.Fatal(err)
	}
	sys := mpcdvfs.NewSystem()
	app, err := mpcdvfs.BenchmarkByName("Spmv")
	if err != nil {
		b.Fatal(err)
	}
	_, target, err := sys.Baseline(&app)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunRepeated(&app, sys.NewMPC(m, opts...), target, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParMPCCacheOff(b *testing.B) { benchParMPCCache(b) }
func BenchmarkParMPCCacheOn(b *testing.B) {
	benchParMPCCache(b, mpcdvfs.WithPredictionCache(predict.DefaultCacheSize))
}
