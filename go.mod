module mpcdvfs

go 1.22
