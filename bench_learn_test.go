// Continuous-training benchmarks (the BENCH_learn.json inputs). The
// costs that matter live on two different planes: Reservoir.Add sits on
// the served observe path (must stay allocation-free so the tap never
// perturbs decision latency), while holdout evaluation and a full
// training round run on the trainer's own goroutine where throughput,
// not latency, is the budget.
//
//	go test -run '^$' -bench BenchmarkLearn -benchmem
package mpcdvfs_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mpcdvfs/internal/hw"
	"mpcdvfs/internal/kernel"
	"mpcdvfs/internal/learn"
	"mpcdvfs/internal/predict"
)

// benchSamples synthesizes served-traffic training samples the same way
// internal/predict's tests do: random kernels measured by the oracle at
// random points of the default configuration space.
func benchSamples(b *testing.B, nKernels, perKernel int, seed int64) []predict.Sample {
	b.Helper()
	o := predict.NewOracle()
	rng := rand.New(rand.NewSource(seed))
	space := hw.DefaultSpace()
	out := make([]predict.Sample, 0, nKernels*perKernel)
	for i := 0; i < nKernels; i++ {
		k := kernel.Random(fmt.Sprintf("bench-%d", i), rng)
		o.Register(k)
		cs := k.Counters()
		for j := 0; j < perKernel; j++ {
			c := space.At(rng.Intn(space.Size()))
			e := o.PredictKernel(cs, c)
			out = append(out, predict.Sample{Counters: cs, Config: c, TimeMS: e.TimeMS, GPUPowerW: e.GPUPowerW})
		}
	}
	return out
}

// BenchmarkLearnReservoirAdd prices the observe-path tap at steady
// state: the reservoir is full, so every Add is one RNG draw and maybe
// one slot overwrite. This is the only learning cost serving ever pays,
// and it must stay zero-alloc (pinned by TestReservoirAddZeroAlloc).
func BenchmarkLearnReservoirAdd(b *testing.B) {
	samples := benchSamples(b, 64, 8, 1)
	res := learn.NewReservoir(256, 1)
	for _, s := range samples {
		res.Add(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Add(samples[i%len(samples)])
	}
}

// BenchmarkLearnHoldoutEval prices the promotion gate: scoring a
// trained candidate on a 128-sample holdout (featurize + compiled
// forest inference + MAPE accumulation per sample).
func BenchmarkLearnHoldoutEval(b *testing.B) {
	train := benchSamples(b, 64, 6, 2)
	holdout := benchSamples(b, 32, 4, 3)
	model, err := predict.TrainOnSamples(train, predict.OnlineForestConfig(2), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm, pm, n := predict.EvaluateOnSamples(model, holdout)
		if n == 0 || tm < 0 || pm < 0 {
			b.Fatal("evaluation produced no results")
		}
	}
}

// BenchmarkLearnTrainRound is the full retraining round the trainer's
// goroutine runs off the serving path: deterministic holdout split,
// candidate forest training on ~384 samples, holdout evaluation, and
// promotion through an install seam.
func BenchmarkLearnTrainRound(b *testing.B) {
	samples := benchSamples(b, 64, 8, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// A fresh trainer per iteration keeps every round identical
		// (round index feeds the split and forest seeds).
		tr := learn.New(learn.Config{
			Seed:       5,
			Forest:     predict.OnlineForestConfig(5),
			MinSamples: 64,
			Gate:       learn.Gate{MaxTimeMAPE: 0.5, MaxPowerMAPE: 0.5},
		})
		tr.Bind(func(predict.Model, string) uint64 { return 2 }, nil)
		for _, s := range samples {
			tr.Add(s)
		}
		b.StartTimer()
		promoted, err := tr.TrainOnce()
		if err != nil {
			b.Fatal(err)
		}
		if !promoted {
			b.Fatalf("candidate rejected: %+v", tr.Status())
		}
	}
}
